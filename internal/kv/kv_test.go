package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func newTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGet(t *testing.T) {
	db := newTestDB(t, Options{})
	if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("alpha"))
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := db.Get([]byte("beta")); err != ErrNotFound {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
}

func TestPutOverwrite(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Put([]byte("k"), []byte("v1"))
	db.Put([]byte("k"), []byte("v2"))
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	// Delete survives a flush.
	db.Put([]byte("other"), []byte("x"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("deleted key after flush: %v", err)
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	db.Put([]byte("k"), []byte("old"))
	db.Flush()
	db.Delete([]byte("k"))
	db.Flush()
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("tombstone in newer table must shadow older value: %v", err)
	}
	it := db.Scan(nil, nil)
	defer it.Close()
	for it.Next() {
		if string(it.Key()) == "k" {
			t.Fatal("scan surfaced a deleted key")
		}
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := newTestDB(t, Options{})
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key must be rejected")
	}
}

func TestScanRange(t *testing.T) {
	db := newTestDB(t, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%d", i)))
	}
	it := db.Scan([]byte("key010"), []byte("key020"))
	defer it.Close()
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 10 || got[0] != "key010" || got[9] != "key019" {
		t.Fatalf("scan got %v", got)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan out of order")
	}
}

func TestScanAcrossMemtableAndTables(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	// Interleave keys between two flushed tables and the memtable.
	for i := 0; i < 90; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("t1"))
	}
	db.Flush()
	for i := 1; i < 90; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("t2"))
	}
	db.Flush()
	for i := 2; i < 90; i += 3 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("mem"))
	}
	it := db.Scan(nil, nil)
	defer it.Close()
	count := 0
	prev := ""
	for it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = k
		count++
	}
	if count != 90 {
		t.Fatalf("scan saw %d keys, want 90", count)
	}
}

func TestNewestVersionWinsAcrossTables(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	db.Put([]byte("k"), []byte("v1"))
	db.Flush()
	db.Put([]byte("k"), []byte("v2"))
	db.Flush()
	db.Put([]byte("k"), []byte("v3")) // memtable
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v3" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	it := db.Scan(nil, nil)
	defer it.Close()
	n := 0
	for it.Next() {
		n++
		if string(it.Value()) != "v3" {
			t.Fatalf("scan value %q, want v3", it.Value())
		}
	}
	if n != 1 {
		t.Fatalf("scan surfaced %d versions", n)
	}
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Dir: dir})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := newTestDB(t, Options{Dir: dir})
	for i := 0; i < 50; i++ {
		got, err := db2.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen, k%02d = %q, %v", i, got, err)
		}
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Dir: dir})
	db.Put([]byte("durable"), []byte("yes"))
	// Flush the WAL buffer to disk without flushing the memtable, then
	// simulate a crash by reopening without Close.
	if err := db.runOnCommitter(func() error { return db.wal.flush() }); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("durable"))
	if err != nil || string(got) != "yes" {
		t.Fatalf("after crash recovery: %q, %v", got, err)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Dir: dir})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	if err := db.runOnCommitter(func() error { return db.wal.flush() }); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Corrupt the tail of the WAL: the intact prefix must still replay.
	walPath := filepath.Join(dir, walName)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got, err := db2.Get([]byte("a")); err != nil || string(got) != "1" {
		t.Fatalf("intact record lost: %q, %v", got, err)
	}
	// The torn record is gone, silently.
	if _, err := db2.Get([]byte("b")); err != ErrNotFound {
		t.Fatalf("torn record must be dropped, got %v", err)
	}
}

func TestAutoFlushOnMemtableSize(t *testing.T) {
	db := newTestDB(t, Options{MemtableBytes: 4 << 10, CompactAt: -1})
	val := bytes.Repeat([]byte("x"), 128)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), val)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("expected automatic flushes")
	}
	if db.Tables() == 0 {
		t.Fatal("expected SSTables on disk")
	}
	// All data still visible.
	for i := 0; i < 200; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("k%04d lost: %v", i, err)
		}
	}
}

func TestCompactionMergesTables(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("r%d", round)))
		}
		db.Flush()
	}
	if db.Tables() != 5 {
		t.Fatalf("tables = %d, want 5", db.Tables())
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Tables() != 1 {
		t.Fatalf("after compaction tables = %d, want 1", db.Tables())
	}
	// Latest round wins everywhere.
	for i := 0; i < 50; i++ {
		got, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(got) != "r4" {
			t.Fatalf("k%03d = %q, %v", i, got, err)
		}
	}
	// Old files are removed from disk once dereferenced.
	names, _ := filepath.Glob(filepath.Join(db.opts.Dir, "*.sst"))
	if len(names) != 1 {
		t.Fatalf("sst files on disk = %d, want 1", len(names))
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	db.Put([]byte("keep"), []byte("v"))
	db.Put([]byte("gone"), []byte("v"))
	db.Flush()
	db.Delete([]byte("gone"))
	db.Flush()
	db.Compact()
	it := db.Scan(nil, nil)
	defer it.Close()
	var keys []string
	for it.Next() {
		keys = append(keys, string(it.Key()))
	}
	if len(keys) != 1 || keys[0] != "keep" {
		t.Fatalf("post-compaction keys = %v", keys)
	}
}

func TestScanSurvivesConcurrentCompaction(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	db.Flush()
	it := db.Scan(nil, nil)
	defer it.Close()
	// Read a few entries, compact underneath, keep reading.
	for i := 0; i < 10; i++ {
		if !it.Next() {
			t.Fatal("iterator ended early")
		}
	}
	for i := 0; i < 3; i++ {
		db.Put([]byte(fmt.Sprintf("extra%d", i)), []byte("v"))
		db.Flush()
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	count := 10
	for it.Next() {
		count++
	}
	if it.Err() != nil {
		t.Fatalf("iterator error after compaction: %v", it.Err())
	}
	if count != 500 {
		t.Fatalf("snapshot scan saw %d keys, want 500", count)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := newTestDB(t, Options{MemtableBytes: 32 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := db.Put(key, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				it := db.Scan(nil, nil)
				prev := ""
				for it.Next() {
					k := string(it.Key())
					if prev != "" && k <= prev {
						t.Errorf("scan out of order: %q after %q", k, prev)
						it.Close()
						return
					}
					prev = k
				}
				if it.Err() != nil {
					t.Errorf("scan: %v", it.Err())
				}
				it.Close()
			}
		}()
	}
	wg.Wait()
	// Final integrity check.
	it := db.Scan(nil, nil)
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if n != 4*300 {
		t.Fatalf("final count %d, want %d", n, 4*300)
	}
}

func TestStatsCounters(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 100))
	}
	db.Flush()
	before := db.Stats()
	it := db.Scan([]byte("k010"), []byte("k050"))
	for it.Next() {
	}
	it.Close()
	d := db.Stats().Sub(before)
	if d.Scans != 1 {
		t.Errorf("scans = %d", d.Scans)
	}
	if d.EntriesRead != 40 {
		t.Errorf("entries read = %d, want 40", d.EntriesRead)
	}
	if d.BlocksRead == 0 || d.BytesRead == 0 {
		t.Errorf("expected block reads, got %+v", d)
	}
	if db.Stats().Puts != 100 {
		t.Errorf("puts = %d", db.Stats().Puts)
	}
}

func TestBloomFilterCutsPointReads(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("present%04d", i)), []byte("v"))
	}
	db.Flush()
	before := db.Stats()
	for i := 0; i < 1000; i++ {
		db.Get([]byte(fmt.Sprintf("absent%04d", i)))
	}
	d := db.Stats().Sub(before)
	if d.BloomNegative < 900 {
		t.Fatalf("bloom negatives = %d, want ≈1000", d.BloomNegative)
	}
}

func TestClosedStore(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	db.Close()
	if err := db.Put([]byte("k2"), []byte("v")); err != ErrClosed {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Errorf("Get after close: %v", err)
	}
	it := db.Scan(nil, nil)
	if it.Next() || it.Err() != ErrClosed {
		t.Error("Scan after close must fail")
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without dir must fail")
	}
}

// Randomized differential test against a plain map.
func TestRandomOpsMatchModel(t *testing.T) {
	db := newTestDB(t, Options{MemtableBytes: 8 << 10, CompactAt: 3})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("key%03d", rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		case 1:
			got, err := db.Get([]byte(k))
			want, ok := model[k]
			if ok != (err == nil) || (ok && string(got) != want) {
				t.Fatalf("op %d: Get(%q) = %q,%v; model %q,%v", op, k, got, err, want, ok)
			}
		default:
			v := fmt.Sprintf("v%d", op)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	// Full scan equals the model.
	it := db.Scan(nil, nil)
	defer it.Close()
	got := map[string]string{}
	for it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if len(got) != len(model) {
		t.Fatalf("scan size %d, model %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %q: scan %q, model %q", k, got[k], v)
		}
	}
}

func TestBloomFilterUnit(t *testing.T) {
	f := newBloomFilter(100)
	for i := 0; i < 100; i++ {
		f.add([]byte(fmt.Sprintf("member%d", i)))
	}
	for i := 0; i < 100; i++ {
		if !f.mayContain([]byte(fmt.Sprintf("member%d", i))) {
			t.Fatal("bloom filter false negative")
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if f.mayContain([]byte(fmt.Sprintf("nonmember%d", i))) {
			fp++
		}
	}
	if fp > 100 {
		t.Fatalf("false positive rate %d/1000 too high", fp)
	}
	// Round trip.
	f2, ok := decodeBloomFilter(f.encode())
	if !ok {
		t.Fatal("decode failed")
	}
	for i := 0; i < 100; i++ {
		if !f2.mayContain([]byte(fmt.Sprintf("member%d", i))) {
			t.Fatal("decoded filter lost members")
		}
	}
	if _, ok := decodeBloomFilter([]byte{1, 2}); ok {
		t.Fatal("corrupt filter must not decode")
	}
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist(1)
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(500)
	for _, k := range keys {
		s.set([]byte(fmt.Sprintf("k%04d", k)), []byte("v"), kindValue)
	}
	it := s.iter(nil, nil)
	prev := ""
	n := 0
	for it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = k
		n++
	}
	if n != 500 {
		t.Fatalf("iterated %d, want 500", n)
	}
	if s.length != 500 {
		t.Fatalf("length = %d", s.length)
	}
}

func TestSSTableCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Dir: dir, CompactAt: -1})
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 50))
	}
	db.Flush()
	db.Close()
	// Flip a byte in the middle of the data section.
	names, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(names) != 1 {
		t.Fatalf("sst files = %d", len(names))
	}
	buf, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF
	if err := os.WriteFile(names[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err) // index+footer intact, open succeeds
	}
	defer db2.Close()
	it := db2.Scan(nil, nil)
	defer it.Close()
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("corrupt block must surface a checksum error")
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put([]byte(fmt.Sprintf("key%012d", i)), val)
	}
}

func BenchmarkScan(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
	db.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.Scan([]byte("key00002000"), []byte("key00003000"))
		for it.Next() {
		}
		it.Close()
	}
}

// Size-tiered compaction: the automatic trigger merges the newest tier of
// similar-sized tables without rewriting a much larger old table.
func TestTieredCompactionSparesBigTable(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	// Build one big table (manual full compaction of lots of data).
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("big%05d", i)), []byte("v"))
	}
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	bigSeq := db.tables[len(db.tables)-1].seq

	// Now enable auto compaction and add several small flushes.
	db.opts.CompactAt = 4
	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			db.Put([]byte(fmt.Sprintf("small%d-%02d", round, i)), []byte("v"))
		}
		db.Flush()
	}
	// The big table must still be the same file (never rewritten).
	found := false
	for _, tab := range db.tables {
		if tab.seq == bigSeq {
			found = true
		}
	}
	if !found {
		t.Fatal("tiered compaction rewrote the big table")
	}
	if db.Stats().Compactions == 1 {
		t.Fatal("automatic tiered compaction never ran")
	}
	// All data still readable.
	if _, err := db.Get([]byte("big00042")); err != nil {
		t.Fatalf("big row lost: %v", err)
	}
	if _, err := db.Get([]byte("small3-07")); err != nil {
		t.Fatalf("small row lost: %v", err)
	}
}

// Partial compaction must preserve tombstones that shadow older tables.
func TestPartialCompactionKeepsTombstones(t *testing.T) {
	db := newTestDB(t, Options{CompactAt: -1})
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("base%05d", i)), []byte("old"))
	}
	db.Flush()
	db.Compact() // one big old table holding base rows

	// Delete a base row, then create a small tier and partially compact it.
	db.Delete([]byte("base00042"))
	db.Put([]byte("extra1"), []byte("v"))
	db.Flush()
	db.Put([]byte("extra2"), []byte("v"))
	db.Flush()
	if err := db.compactTables(2); err != nil { // merge the two small tables only
		t.Fatal(err)
	}
	nTables := db.Tables()
	if nTables != 2 {
		t.Fatalf("tables = %d, want 2 (merged tier + big table)", nTables)
	}
	// The tombstone must still shadow the base row in the big table.
	if _, err := db.Get([]byte("base00042")); err != ErrNotFound {
		t.Fatalf("tombstone lost in partial compaction: %v", err)
	}
	// A later full compaction drops it for good.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("base00042")); err != ErrNotFound {
		t.Fatalf("after full compaction: %v", err)
	}
}

func TestSyncWrites(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Dir: dir, SyncWrites: true})
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// With SyncWrites every Put reaches the disk WAL: a crash-reopen without
	// any explicit flush must still see it.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got, err := db2.Get([]byte("k")); err != nil || string(got) != "v" {
		t.Fatalf("synced write lost: %q %v", got, err)
	}
}
