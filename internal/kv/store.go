package kv

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options configure a store.
type Options struct {
	// Dir is the directory holding the WAL and SSTables. Created if missing.
	Dir string
	// MemtableBytes is the flush threshold. Default 4 MiB.
	MemtableBytes int
	// CompactAt triggers a full compaction when the SSTable count reaches
	// this value. Default 6. Zero keeps the default; negative disables
	// automatic compaction.
	CompactAt int
	// SyncWrites fsyncs the WAL on every write. Default off: the evaluation
	// workloads are bulk loads where group durability is what HBase offers
	// too.
	SyncWrites bool
	// BlockCacheBytes sizes the per-store LRU block cache. Default 8 MiB;
	// negative disables caching.
	BlockCacheBytes int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableBytes <= 0 {
		out.MemtableBytes = 4 << 20
	}
	if out.CompactAt == 0 {
		out.CompactAt = 6
	}
	if out.BlockCacheBytes == 0 {
		out.BlockCacheBytes = 8 << 20
	}
	return out
}

// DB is a single-node LSM store. All methods are safe for concurrent use.
type DB struct {
	opts Options

	mu      sync.Mutex
	mem     *skiplist
	wal     *wal
	tables  []*sstReader // newest first
	nextSeq uint64
	closed  bool

	cache *blockCache // nil when disabled
	stats Stats
}

const walName = "wal.log"

// Open opens (or creates) a store in opts.Dir, replaying any WAL left behind
// by an unclean shutdown.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("kv: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("kv: create dir: %w", err)
	}
	db := &DB{opts: opts, mem: newSkiplist(1), nextSeq: 1}
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}

	// Discover existing SSTables.
	names, err := filepath.Glob(filepath.Join(opts.Dir, "*.sst"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".sst")
		seq, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			continue // not one of ours
		}
		sr, err := openSSTable(name, seq, &db.stats, db.cache)
		if err != nil {
			for _, t := range db.tables {
				t.release()
			}
			return nil, err
		}
		sr.retain()
		db.tables = append(db.tables, sr)
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
	}
	// Newest first so the merge heap prefers fresher versions.
	sort.Slice(db.tables, func(i, j int) bool { return db.tables[i].seq > db.tables[j].seq })

	// Replay the WAL into the memtable.
	walPath := filepath.Join(opts.Dir, walName)
	if err := replayWAL(walPath, func(kind byte, key, value []byte) {
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		db.mem.set(k, v, kind)
	}); err != nil {
		db.releaseAll()
		return nil, err
	}
	w, err := openWAL(walPath)
	if err != nil {
		db.releaseAll()
		return nil, err
	}
	db.wal = w
	return db, nil
}

func (db *DB) releaseAll() {
	for _, t := range db.tables {
		t.release()
	}
	db.tables = nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(kindValue, key, value)
}

// Delete removes a key (by writing a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(kindTombstone, key, nil)
}

func (db *DB) write(kind byte, key, value []byte) error {
	if len(key) == 0 {
		return errEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	n, err := db.wal.append(kind, key, value)
	if err != nil {
		return fmt.Errorf("kv: wal append: %w", err)
	}
	if db.opts.SyncWrites {
		if err := db.wal.sync(); err != nil {
			return fmt.Errorf("kv: wal sync: %w", err)
		}
	}
	db.stats.BytesWritten.Add(int64(n))
	db.stats.Puts.Add(1)
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	db.mem.set(k, v, kind)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.stats.Gets.Add(1)
	if n := db.mem.get(key); n != nil {
		var out []byte
		notFound := n.kind == kindTombstone
		if !notFound {
			out = append([]byte(nil), n.value...)
		}
		db.mu.Unlock()
		if notFound {
			return nil, ErrNotFound
		}
		return out, nil
	}
	// Retain the current table set, then search outside the lock.
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, t := range tables {
		v, kind, found, err := t.get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return nil, ErrNotFound
}

// Scan returns an iterator over [start, end); nil bounds are open. The
// iterator sees a snapshot of the memtable and the table set as of the call.
func (db *DB) Scan(start, end []byte) Iterator {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return &errIter{err: ErrClosed}
	}
	db.stats.Scans.Add(1)
	sources := []kvIter{snapshotMem(db.mem, start, end)}
	releases := make([]func(), 0, len(db.tables))
	for _, t := range db.tables {
		t.retain()
		tt := t
		releases = append(releases, func() { tt.release() })
		sources = append(sources, t.iter(start, end))
	}
	db.mu.Unlock()
	return newMergeIter(sources, &db.stats, releases)
}

// Flush persists the memtable to a new SSTable and truncates the WAL.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.length == 0 {
		return nil
	}
	seq := db.nextSeq
	path := filepath.Join(db.opts.Dir, fmt.Sprintf("%012d.sst", seq))
	sw, err := newSSTWriter(path, db.mem.length)
	if err != nil {
		return err
	}
	it := db.mem.iter(nil, nil)
	for it.Next() {
		if err := sw.add(it.Kind(), it.Key(), it.Value()); err != nil {
			sw.abort()
			return err
		}
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(path, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.nextSeq++
	db.stats.BytesWritten.Add(size)
	db.stats.Flushes.Add(1)
	db.tables = append([]*sstReader{sr}, db.tables...)
	db.mem = newSkiplist(int64(seq))

	// The WAL's contents are durable in the SSTable now.
	if err := db.wal.close(); err != nil {
		return err
	}
	walPath := filepath.Join(db.opts.Dir, walName)
	if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	w, err := openWAL(walPath)
	if err != nil {
		return err
	}
	db.wal = w

	if db.opts.CompactAt > 0 && len(db.tables) >= db.opts.CompactAt {
		return db.compactTablesLocked(db.pickTierLocked())
	}
	return nil
}

// pickTierLocked chooses how many of the newest tables to merge: the longest
// newest-first prefix in which no table dwarfs the data accumulated so far
// (size-tiered compaction). Merging stops before a much larger, older table
// so steady-state write amplification stays logarithmic instead of linear.
func (db *DB) pickTierLocked() int {
	n := 1
	acc := db.tables[0].count
	for n < len(db.tables) && db.tables[n].count <= 4*acc {
		acc += db.tables[n].count
		n++
	}
	if n < 2 {
		n = 2 // merging a single table is a no-op; take the next one along
	}
	if n > len(db.tables) {
		n = len(db.tables)
	}
	return n
}

// Compact merges every SSTable into one, dropping shadowed versions and
// tombstones. The memtable is flushed first.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.mem.length > 0 {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	return db.compactTablesLocked(len(db.tables))
}

// compactTablesLocked merges the n newest tables into one. Tombstones are
// dropped only when every table participates — a partial merge must keep
// them so they continue to shadow versions in the older tables.
func (db *DB) compactTablesLocked(n int) error {
	if n > len(db.tables) {
		n = len(db.tables)
	}
	if n <= 1 {
		return nil
	}
	full := n == len(db.tables)
	victims := db.tables[:n]

	sources := make([]kvIter, 0, n)
	var total int64
	for _, t := range victims {
		sources = append(sources, t.iter(nil, nil))
		total += t.count
	}
	seq := db.nextSeq
	path := filepath.Join(db.opts.Dir, fmt.Sprintf("%012d.sst", seq))
	sw, err := newSSTWriter(path, int(total))
	if err != nil {
		return err
	}
	merged := newMergeIter(sources, nil, nil)
	merged.keepTombstones = !full
	for merged.Next() {
		if err := sw.add(merged.kind, merged.Key(), merged.Value()); err != nil {
			sw.abort()
			_ = merged.Close()
			return err
		}
	}
	if err := merged.Err(); err != nil {
		sw.abort()
		_ = merged.Close()
		return err
	}
	if err := merged.Close(); err != nil {
		sw.abort()
		return err
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(path, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.nextSeq++
	db.stats.BytesWritten.Add(size)
	db.stats.Compactions.Add(1)
	remainder := db.tables[n:]
	db.tables = append([]*sstReader{sr}, remainder...)
	for _, t := range victims {
		t.obsolete.Store(true)
		if db.cache != nil {
			db.cache.dropTable(t.seq)
		}
		t.release()
	}
	return nil
}

// Verify walks every SSTable block and checks its checksum, returning the
// first corruption found. The memtable and WAL are not covered (the WAL
// self-verifies on replay). Useful after copying store directories around.
func (db *DB) Verify() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, t := range tables {
		for i := range t.index {
			if err := t.verifyBlock(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the store's I/O counters.
func (db *DB) Stats() StatsSnapshot {
	return db.stats.snapshot()
}

// Tables returns the current SSTable count (for tests and monitoring).
func (db *DB) Tables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// Close flushes the WAL buffer and releases every table. Open iterators keep
// their retained tables alive until they are closed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	err := db.wal.close()
	db.releaseAll()
	return err
}

// errIter is an Iterator that immediately fails with a fixed error.
type errIter struct{ err error }

func (e *errIter) Next() bool    { return false }
func (e *errIter) Key() []byte   { return nil }
func (e *errIter) Value() []byte { return nil }
func (e *errIter) Err() error    { return e.err }
func (e *errIter) Close() error  { return nil }
