package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/vfs"
)

// Options configure a store.
type Options struct {
	// Dir is the directory holding the WAL and SSTables. Created if missing.
	Dir string
	// MemtableBytes is the flush threshold. Default 4 MiB.
	MemtableBytes int
	// CompactAt triggers a full compaction when the SSTable count reaches
	// this value. Default 6. Zero keeps the default; negative disables
	// automatic compaction.
	CompactAt int
	// SyncWrites fsyncs the WAL before acknowledging a write. Default off:
	// the evaluation workloads are bulk loads where group durability is what
	// HBase offers too. Concurrent synced writers share fsyncs: the committer
	// goroutine syncs once per commit group, not once per write.
	SyncWrites bool
	// CompactRetries bounds how many times the background compactor retries
	// a round whose failure is transient (an error in the chain implementing
	// interface{ Transient() bool }) before marking the store degraded.
	// Default 5; negative never retries.
	CompactRetries int
	// CompactRetryBase and CompactRetryMax bound the capped exponential
	// backoff between compaction retries. Defaults 10ms and 1s.
	CompactRetryBase time.Duration
	CompactRetryMax  time.Duration
	// BlockCacheBytes sizes the per-store LRU block cache. Default 8 MiB;
	// negative disables caching.
	BlockCacheBytes int64
	// FS is the filesystem the store runs on. Default vfs.Default (the real
	// disk); tests substitute vfs.NewFault() to inject failures and crashes.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableBytes <= 0 {
		out.MemtableBytes = 4 << 20
	}
	if out.CompactAt == 0 {
		out.CompactAt = 6
	}
	if out.CompactRetries == 0 {
		out.CompactRetries = 5
	}
	if out.CompactRetries < 0 {
		out.CompactRetries = 0
	}
	if out.CompactRetryBase <= 0 {
		out.CompactRetryBase = 10 * time.Millisecond
	}
	if out.CompactRetryMax <= 0 {
		out.CompactRetryMax = time.Second
	}
	if out.BlockCacheBytes == 0 {
		out.BlockCacheBytes = 8 << 20
	}
	if out.FS == nil {
		out.FS = vfs.Default
	}
	return out
}

// DB is a single-node LSM store. All methods are safe for concurrent use.
//
// Two background goroutines run for the life of the store (joined by Close
// through bg): the committer (commit.go), which owns the WAL and is the sole
// mutator of the memtable and the table manifest, and the compactor
// (compactor.go), which merges SSTables off the write path.
type DB struct {
	opts Options

	mu  sync.Mutex
	mem *skiplist
	// frozen holds immutable memtables, newest first: the active list moves
	// here (freezeLocked) when a snapshot pins the store or a flush begins,
	// and the next flush merges the whole stack into one SSTable. Frozen
	// lists are never mutated, so snapshots iterate them without a lock.
	frozen      []*skiplist
	frozenBytes int
	tables      []*sstReader // newest first
	nextSeq     uint64
	closed      bool

	// wal is owned by the committer goroutine once Open returns: every
	// append, sync and rotation happens there. Open (before the goroutines
	// start) and Close (after bg.Wait joins them) are the only other
	// touchpoints, so no lock guards it.
	wal *wal

	commit    *committer
	compactor *compactor
	bgCtx     context.Context // cancelled by Close; aborts compaction backoff
	bgCancel  context.CancelFunc
	bg        sync.WaitGroup

	cache *blockCache // nil when disabled
	stats Stats
}

const (
	walName    = "wal.log"
	tablesName = "TABLES"
)

// Open opens (or creates) a store in opts.Dir, replaying any WAL left behind
// by an unclean shutdown.
//
// Recovery sequence: leftover .tmp files (from flushes or compactions that
// never committed) are deleted; the TABLES manifest names the live SSTables,
// and any .sst file not listed there is deleted too — it is either an
// uncommitted flush (its records are still in the WAL) or a compaction
// victim whose durable removal never happened (its records live in the
// merged table that the manifest does list). Then the WAL replays into the
// memtable.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("kv: Options.Dir is required")
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("kv: create dir: %w", err)
	}
	db := &DB{opts: opts, mem: newSkiplist(1), nextSeq: 1}
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}

	names, err := fsys.List(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("kv: list dir: %w", err)
	}
	// Uncommitted temp files never hold the only copy of anything: delete.
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := fsys.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, fmt.Errorf("kv: clean %s: %w", name, err)
			}
		}
	}

	order, haveManifest, err := readTables(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	// rank maps a listed table to its manifest position (0 = newest).
	rank := make(map[uint64]int, len(order))
	for i, seq := range order {
		rank[seq] = i
	}
	live := make(map[uint64]bool, len(order))
	for _, seq := range order {
		live[seq] = true
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) || !strings.HasSuffix(name, sstSuffix) {
			continue
		}
		seq, perr := strconv.ParseUint(strings.TrimSuffix(name, sstSuffix), 10, 64)
		if perr != nil {
			continue // not one of ours
		}
		path := filepath.Join(opts.Dir, name)
		if haveManifest && !live[seq] {
			// Stale: uncommitted flush or unremoved compaction victim.
			if err := fsys.Remove(path); err != nil {
				db.releaseAll()
				return nil, fmt.Errorf("kv: clean stale sstable %s: %w", name, err)
			}
			continue
		}
		sr, err := openSSTable(fsys, path, seq, &db.stats, db.cache)
		if err != nil {
			db.releaseAll()
			return nil, err
		}
		sr.retain()
		db.tables = append(db.tables, sr)
		delete(live, seq)
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
	}
	if haveManifest && len(live) > 0 {
		db.releaseAll()
		return nil, fmt.Errorf("kv: manifest lists %d missing sstable(s) in %s", len(live), opts.Dir)
	}
	// Newest first so the merge heap prefers fresher versions. The manifest's
	// line order is the authority: a background merge's output can carry a
	// higher sequence number than a concurrently-started flush whose data is
	// newer, so sorting by seq alone would let old merged versions shadow
	// acknowledged writes. Without a manifest (first open of a pre-manifest
	// directory) every table is a plain flush and seq order is recency order.
	if haveManifest {
		sort.Slice(db.tables, func(i, j int) bool { return rank[db.tables[i].seq] < rank[db.tables[j].seq] })
	} else {
		sort.Slice(db.tables, func(i, j int) bool { return db.tables[i].seq > db.tables[j].seq })
	}

	// Replay the WAL into the memtable.
	walPath := filepath.Join(opts.Dir, walName)
	if err := replayWAL(fsys, walPath, func(kind byte, key, value []byte) {
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		db.mem.set(k, v, kind)
	}); err != nil {
		db.releaseAll()
		return nil, err
	}
	w, err := openWAL(fsys, walPath)
	if err != nil {
		db.releaseAll()
		return nil, err
	}
	db.wal = w
	if !haveManifest {
		// First open (or a pre-manifest directory): record the current table
		// set so later crash cleanup has a baseline.
		if err := db.writeTables(); err != nil {
			_ = db.wal.close()
			db.releaseAll()
			return nil, err
		}
	}
	// Make the (possibly new) WAL's directory entry durable: with SyncWrites
	// a record is acknowledged as durable the moment the file syncs, which
	// only holds if the file itself survives the crash.
	if err := fsys.SyncDir(opts.Dir); err != nil {
		_ = db.wal.close()
		db.releaseAll()
		return nil, fmt.Errorf("kv: sync dir: %w", err)
	}

	// Recovery succeeded: start the committer and the compaction supervisor.
	// Nothing above runs concurrently, so the single-threaded recovery code
	// could touch the WAL and table set directly.
	db.bgCtx, db.bgCancel = context.WithCancel(context.Background())
	db.commit = newCommitter(db)
	db.compactor = newCompactor(db)
	db.bg.Add(2)
	go func() {
		defer db.bg.Done()
		db.commit.loop()
	}()
	go func() {
		defer db.bg.Done()
		db.compactor.loop()
	}()
	return db, nil
}

// readTables parses the TABLES manifest: a header line then one live table
// sequence number per line, newest first. The line order is authoritative —
// writeTables records the in-memory table order, and with background
// compaction a merged table's sequence number no longer encodes its recency
// rank (a flush that began before the merge snapshot can hold newer data
// under a lower number). Returns haveManifest=false when the file does not
// exist.
func readTables(fsys vfs.FS, dir string) ([]uint64, bool, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, tablesName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("kv: read tables manifest: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != "tables v1" {
		return nil, false, fmt.Errorf("kv: tables manifest has bad header")
	}
	order := make([]uint64, 0, len(lines)-1)
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		seq, err := strconv.ParseUint(ln, 10, 64)
		if err != nil {
			return nil, false, fmt.Errorf("kv: tables manifest has bad entry %q", ln)
		}
		order = append(order, seq)
	}
	return order, true, nil
}

// writeTables atomically replaces the TABLES manifest with the current table
// set (tmp file + sync + rename + directory fsync). This is the commit point
// for flushes and compactions: a table not listed here is deleted at the next
// Open. Only recovery (single-threaded) and the committer goroutine call it,
// so the manifest I/O is serialized without holding db.mu across it.
func (db *DB) writeTables() error {
	db.mu.Lock()
	seqs := make([]uint64, len(db.tables))
	for i, t := range db.tables {
		seqs[i] = t.seq
	}
	db.mu.Unlock()
	return db.writeManifest(seqs)
}

// writeManifest commits an explicit table order (newest first) to the TABLES
// manifest. flush passes the not-yet-published table ahead of the current
// set so the manifest commit can precede the in-memory install; everything
// else goes through writeTables. Committer goroutine (or recovery) only.
func (db *DB) writeManifest(seqs []uint64) error {
	var buf bytes.Buffer
	buf.WriteString("tables v1\n")
	for _, seq := range seqs {
		_, _ = fmt.Fprintf(&buf, "%d\n", seq)
	}
	fsys := db.opts.FS
	path := filepath.Join(db.opts.Dir, tablesName)
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("kv: write tables manifest: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: write tables manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: sync tables manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: close tables manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: commit tables manifest: %w", err)
	}
	if err := fsys.SyncDir(db.opts.Dir); err != nil {
		return fmt.Errorf("kv: commit tables manifest: %w", err)
	}
	return nil
}

func (db *DB) releaseAll() {
	for _, t := range db.tables {
		t.release()
	}
	db.tables = nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(kindValue, key, value)
}

// Delete removes a key (by writing a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(kindTombstone, key, nil)
}

// write validates and copies one record, then hands it to the committer: the
// caller blocks until its commit group is durable (one shared fsync when
// SyncWrites is on) and applied, or until the group's failure fans out. WAL
// healing, memtable-threshold flushes and compaction scheduling all happen on
// the committer's side of the queue — no caller holds db.mu across I/O.
func (db *DB) write(kind byte, key, value []byte) error {
	if len(key) == 0 {
		return errEmptyKey
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	return db.commit.submit(&commitReq{
		entries: []batchEntry{{kind: kind, key: k, value: v}},
		done:    make(chan error, 1),
	})
}

// Get returns the value for key, or ErrNotFound. The active-memtable probe
// runs under db.mu (it is the only mutable source); frozen memtables and the
// retained table set are searched outside the lock. Point reads deliberately
// do not freeze the memtable — that would shatter a write-heavy workload into
// per-get frozen lists — so Get pins the live view instead of a Snapshot.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.stats.Gets.Add(1)
	if n := db.mem.get(key); n != nil {
		var out []byte
		notFound := n.kind == kindTombstone
		if !notFound {
			out = append([]byte(nil), n.value...)
		}
		db.mu.Unlock()
		if notFound {
			return nil, ErrNotFound
		}
		return out, nil
	}
	// Pin the frozen stack and retain the table set, then search outside the
	// lock: frozen lists are immutable and the references keep the files open.
	frozen := make([]*skiplist, len(db.frozen))
	copy(frozen, db.frozen)
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, m := range frozen {
		if n := m.get(key); n != nil {
			if n.kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), n.value...), nil
		}
	}
	for _, t := range tables {
		v, kind, found, err := t.get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return nil, ErrNotFound
}

// Scan returns an iterator over [start, end); nil bounds are open. The
// iterator reads from a pinned snapshot taken at the call — a point-in-time
// view that later writes, flushes and compactions cannot disturb — and
// releases it when closed.
func (db *DB) Scan(start, end []byte) Iterator {
	snap, err := db.Snapshot()
	if err != nil {
		return &errIter{err: err}
	}
	return snap.scan(start, end, func() { _ = snap.Close() })
}

// Flush persists the memtable to a new SSTable and truncates the WAL, then
// waits for any compaction the flush scheduled to finish — the explicit
// durability barrier behaves as it did when compaction ran inline. A failed
// background compaction does not fail Flush; it surfaces as CompactDegraded
// in Stats.
func (db *DB) Flush() error {
	if err := db.runOnCommitter(db.flush); err != nil {
		return err
	}
	db.compactor.waitIdle()
	return nil
}

// flush persists the frozen memtable stack (freezing the active list first)
// as one SSTable, commits it to the TABLES manifest and rotates the WAL.
// Crash ordering: the table file is durable before the manifest lists it, the
// manifest lists it before the frozen stack is dropped or the table enters
// the in-memory set, and the WAL (whose records the table supersedes) is
// deleted last — a crash or failure between any two steps recovers every
// acknowledged record from either the table or the WAL.
//
// A flush also heals a poisoned WAL (see wal): once every memtable — which
// together hold every acknowledged record — is durable in a table, the torn
// log can be rotated away. Empty memtables with a poisoned WAL rotate
// without writing a table.
//
// flush runs only on the committer goroutine (explicit Flush, the group
// commit's memtable-threshold check, and WAL healing all route through it).
// The committer is the sole writer of memtables, so while flush runs no
// record can enter any memtable: a concurrent Snapshot can only freeze the
// (empty, untouched) fresh active list, which freezeLocked skips. The frozen
// stack captured below is therefore exactly the set of records the WAL
// holds, which is what makes the rotation at the end safe. The long SSTable
// write needs no lock — frozen lists are immutable — only the install does.
func (db *DB) flush() error {
	db.mu.Lock()
	db.freezeLocked()
	mems := make([]*skiplist, len(db.frozen))
	copy(mems, db.frozen)
	db.mu.Unlock()
	if len(mems) == 0 {
		if db.wal.poisoned() {
			return db.rotateWAL()
		}
		return nil
	}
	db.mu.Lock()
	seq := db.nextSeq
	db.nextSeq++
	db.mu.Unlock()
	total := 0
	for _, m := range mems {
		total += m.length
	}
	sw, err := newSSTWriter(db.opts.FS, db.opts.Dir, seq, total)
	if err != nil {
		return err
	}
	// Merge the stack newest first (source order is merge priority) and keep
	// tombstones: they must continue to shadow versions in older SSTables.
	sources := make([]kvIter, 0, len(mems))
	for _, m := range mems {
		sources = append(sources, m.iter(nil, nil))
	}
	merged := newMergeIter(sources, nil, nil)
	merged.keepTombstones = true
	defer merged.Close()
	for merged.Next() {
		if err := sw.add(merged.kind, merged.Key(), merged.Value()); err != nil {
			sw.abort()
			return err
		}
	}
	if err := merged.Err(); err != nil {
		sw.abort()
		return err
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(db.opts.FS, sw.final, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.stats.BytesWritten.Add(size)

	// Commit point: the manifest lists the new table BEFORE it enters the
	// in-memory table set or the frozen stack is dropped. If this fails,
	// nothing in memory has changed — the memtables and WAL remain the
	// authoritative copy of these records, so a later WAL heal cannot rotate
	// away their only committed copy (the table file, unlisted, is deleted at
	// the next Open). The reverse order lost acknowledged writes: a failed
	// manifest commit after the swap left empty memtables, and the
	// empty-memtable heal below would then rotate the WAL while the flushed
	// table was not durable in the manifest.
	db.mu.Lock()
	seqs := make([]uint64, 0, len(db.tables)+1)
	seqs = append(seqs, seq)
	for _, t := range db.tables {
		seqs = append(seqs, t.seq)
	}
	db.mu.Unlock()
	if err := db.writeManifest(seqs); err != nil {
		sr.release()
		return err
	}
	db.mu.Lock()
	db.tables = append([]*sstReader{sr}, db.tables...)
	// The flushed memtables are the oldest suffix of the frozen stack (later
	// freezes prepend; and in fact none can happen mid-flush, see above).
	db.frozen = db.frozen[:len(db.frozen)-len(mems)]
	freed := 0
	for _, m := range mems {
		freed += m.bytes
	}
	db.frozenBytes -= freed
	nTables := len(db.tables)
	db.mu.Unlock()
	db.stats.FrozenMemtables.Add(int64(-len(mems)))
	db.stats.Flushes.Add(1)

	// The WAL's contents are durable in the committed SSTable now.
	if err := db.rotateWAL(); err != nil {
		return err
	}

	if db.opts.CompactAt > 0 && nTables >= db.opts.CompactAt {
		db.compactor.schedule()
	}
	return nil
}

// rotateWAL replaces the WAL with a fresh, empty one; committer-goroutine
// only, like everything touching db.wal. Callers must ensure every
// acknowledged record is durable elsewhere first. On failure the store keeps
// a permanently-poisoned WAL so writes keep failing (and keep retrying the
// rotation) rather than silently appending to a log in an unknown state.
func (db *DB) rotateWAL() error {
	fsys := db.opts.FS
	// Close errors are deliberately ignored: the file is about to be
	// deleted, and a poisoned WAL cannot flush its buffer anyway.
	_ = db.wal.close()
	walPath := filepath.Join(db.opts.Dir, walName)
	if err := fsys.Remove(walPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		db.wal = brokenWAL(err)
		return err
	}
	w, err := openWAL(fsys, walPath)
	if err != nil {
		db.wal = brokenWAL(err)
		return err
	}
	// Make the new WAL's directory entry (and the old one's removal)
	// durable; otherwise SyncWrites acknowledgements into a file that
	// vanishes with the crash would be lies.
	if err := fsys.SyncDir(db.opts.Dir); err != nil {
		_ = w.close()
		db.wal = brokenWAL(err)
		return err
	}
	db.wal = w
	return nil
}

// pickTierLocked chooses how many of the newest tables to merge: the longest
// newest-first prefix in which no table dwarfs the data accumulated so far
// (size-tiered compaction). Merging stops before a much larger, older table
// so steady-state write amplification stays logarithmic instead of linear.
func (db *DB) pickTierLocked() int {
	n := 1
	acc := db.tables[0].count
	for n < len(db.tables) && db.tables[n].count <= 4*acc {
		acc += db.tables[n].count
		n++
	}
	if n < 2 {
		n = 2 // merging a single table is a no-op; take the next one along
	}
	if n > len(db.tables) {
		n = len(db.tables)
	}
	return n
}

// Compact merges every SSTable into one, dropping shadowed versions and
// tombstones. The memtable is flushed first, then the full merge runs on the
// compaction supervisor (synchronously for this caller).
func (db *DB) Compact() error {
	if err := db.runOnCommitter(db.flush); err != nil {
		return err
	}
	return db.compactor.compactAll()
}

// compactTables selectors: how many of the newest tables to merge.
const (
	compactPickTier   = 0  // choose by the size-tiered heuristic
	compactEverything = -1 // merge every table
)

// compactTables merges the n newest tables into one (n as above, or an
// explicit count for tests). Tombstones are dropped only when every table
// participates — a partial merge must keep them so they continue to shadow
// versions in the older tables.
//
// Only the compaction supervisor (and tests, with automatic compaction off)
// may run this: the victim snapshot must stay a contiguous run of db.tables
// for the install splice, which holds because concurrent flushes only
// prepend and nobody else removes tables. The heavy merge I/O runs with no
// lock held; the install — table-set splice plus manifest commit — is handed
// to the committer goroutine, which serializes it with flushes.
func (db *DB) compactTables(n int) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if len(db.tables) == 0 {
		db.mu.Unlock()
		return nil
	}
	if n == compactEverything || n > len(db.tables) {
		n = len(db.tables)
	} else if n == compactPickTier {
		n = db.pickTierLocked()
	}
	if n <= 1 {
		db.mu.Unlock()
		return nil
	}
	full := n == len(db.tables)
	victims := make([]*sstReader, n)
	copy(victims, db.tables[:n])
	var total int64
	for _, t := range victims {
		t.retain()
		total += t.count
	}
	// Allocate the merged table's sequence number now, under the same lock
	// as the snapshot: tables flushed while the merge runs get higher
	// numbers, so on reopen the seq order still ranks them newer than the
	// merged output they stack on top of.
	seq := db.nextSeq
	db.nextSeq++
	db.mu.Unlock()
	defer func() {
		for _, t := range victims {
			t.release()
		}
	}()

	sources := make([]kvIter, 0, n)
	for _, t := range victims {
		sources = append(sources, t.iter(nil, nil))
	}
	sw, err := newSSTWriter(db.opts.FS, db.opts.Dir, seq, int(total))
	if err != nil {
		return err
	}
	merged := newMergeIter(sources, nil, nil)
	merged.keepTombstones = !full
	rows := 0
	for merged.Next() {
		if rows++; rows&1023 == 0 {
			// Amortized shutdown check so Close never waits out a big merge.
			if err := db.bgCtx.Err(); err != nil {
				sw.abort()
				_ = merged.Close()
				return err
			}
		}
		if err := sw.add(merged.kind, merged.Key(), merged.Value()); err != nil {
			sw.abort()
			_ = merged.Close()
			return err
		}
	}
	if err := merged.Err(); err != nil {
		sw.abort()
		_ = merged.Close()
		return err
	}
	if err := merged.Close(); err != nil {
		sw.abort()
		return err
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(db.opts.FS, sw.final, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.stats.BytesWritten.Add(size)
	if err := db.runOnCommitter(func() error { return db.installCompaction(victims, sr) }); err != nil {
		// Not installed (e.g. the store closed mid-merge): the merged file is
		// unlisted on disk, so the next Open deletes it.
		sr.release()
		return err
	}
	return nil
}

// installCompaction publishes a finished merge: splice the merged table over
// its victims in the table set, then commit the manifest. Runs on the
// committer goroutine.
func (db *DB) installCompaction(victims []*sstReader, sr *sstReader) error {
	db.mu.Lock()
	idx := -1
	for i, t := range db.tables {
		if t == victims[0] {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Unreachable while the single-supervisor invariant holds.
		db.mu.Unlock()
		return fmt.Errorf("kv: compaction victims no longer in table set")
	}
	next := make([]*sstReader, 0, len(db.tables)-len(victims)+1)
	next = append(next, db.tables[:idx]...)
	next = append(next, sr)
	next = append(next, db.tables[idx+len(victims):]...)
	db.tables = next
	db.mu.Unlock()
	db.stats.Compactions.Add(1)

	// Commit point: the manifest swap makes the merged table live and the
	// victims stale in one atomic step. This is what keeps a full
	// compaction's tombstone dropping crash-safe — if any victim file
	// outlives a crash (its deletion below was not yet durable), Open sees
	// it is unlisted and deletes it, so a dropped tombstone's shadowed
	// versions cannot resurrect.
	if err := db.writeTables(); err != nil {
		// The merged table serves reads in this process but is stale on
		// disk; at the next Open it is deleted and the still-listed victims
		// (whose files remain, not marked obsolete) take over. Identical
		// contents either way.
		for _, t := range victims {
			if db.cache != nil {
				db.cache.dropTable(t.seq)
			}
			t.release()
		}
		return err
	}
	for _, t := range victims {
		// Gauge first, then mark, then drop the table set's reference: if no
		// snapshot holds the victim the release unlinks it immediately and
		// decrements the gauge right back; otherwise the file lingers, counted,
		// until the last holder releases (the reaper in sstReader.release).
		db.stats.ObsoleteTables.Add(1)
		t.obsolete.Store(true)
		if db.cache != nil {
			db.cache.dropTable(t.seq)
		}
		t.release()
	}
	return nil
}

// Verify walks every SSTable block and checks its checksum, returning the
// first corruption found. The memtable and WAL are not covered (the WAL
// self-verifies on replay). Useful after copying store directories around.
func (db *DB) Verify() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, t := range tables {
		for i := range t.index {
			if err := t.verifyBlock(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the store's I/O counters.
func (db *DB) Stats() StatsSnapshot {
	return db.stats.snapshot()
}

// Tables returns the current SSTable count (for tests and monitoring).
func (db *DB) Tables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// Close stops the background goroutines, flushes the WAL buffer and releases
// every table. Commit groups already in flight finish and acknowledge their
// real result; requests still queued behind them drain with ErrClosed — a
// waiter always hears an answer. Open iterators keep their retained tables
// alive until they are closed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()

	db.commit.close()
	db.compactor.stop()
	db.bgCancel() // aborts a compaction backoff or mid-merge wait immediately
	db.bg.Wait()

	err := db.wal.close()
	db.mu.Lock()
	db.releaseAll()
	db.frozen = nil
	db.frozenBytes = 0
	db.mu.Unlock()
	return err
}

// errIter is an Iterator that immediately fails with a fixed error.
type errIter struct{ err error }

func (e *errIter) Next() bool    { return false }
func (e *errIter) Key() []byte   { return nil }
func (e *errIter) Value() []byte { return nil }
func (e *errIter) Err() error    { return e.err }
func (e *errIter) Close() error  { return nil }
