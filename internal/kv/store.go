package kv

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/vfs"
)

// Options configure a store.
type Options struct {
	// Dir is the directory holding the WAL and SSTables. Created if missing.
	Dir string
	// MemtableBytes is the flush threshold. Default 4 MiB.
	MemtableBytes int
	// CompactAt triggers a full compaction when the SSTable count reaches
	// this value. Default 6. Zero keeps the default; negative disables
	// automatic compaction.
	CompactAt int
	// SyncWrites fsyncs the WAL on every write. Default off: the evaluation
	// workloads are bulk loads where group durability is what HBase offers
	// too.
	SyncWrites bool
	// BlockCacheBytes sizes the per-store LRU block cache. Default 8 MiB;
	// negative disables caching.
	BlockCacheBytes int64
	// FS is the filesystem the store runs on. Default vfs.Default (the real
	// disk); tests substitute vfs.NewFault() to inject failures and crashes.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableBytes <= 0 {
		out.MemtableBytes = 4 << 20
	}
	if out.CompactAt == 0 {
		out.CompactAt = 6
	}
	if out.BlockCacheBytes == 0 {
		out.BlockCacheBytes = 8 << 20
	}
	if out.FS == nil {
		out.FS = vfs.Default
	}
	return out
}

// DB is a single-node LSM store. All methods are safe for concurrent use.
type DB struct {
	opts Options

	mu      sync.Mutex
	mem     *skiplist
	wal     *wal
	tables  []*sstReader // newest first
	nextSeq uint64
	closed  bool

	cache *blockCache // nil when disabled
	stats Stats
}

const (
	walName    = "wal.log"
	tablesName = "TABLES"
)

// Open opens (or creates) a store in opts.Dir, replaying any WAL left behind
// by an unclean shutdown.
//
// Recovery sequence: leftover .tmp files (from flushes or compactions that
// never committed) are deleted; the TABLES manifest names the live SSTables,
// and any .sst file not listed there is deleted too — it is either an
// uncommitted flush (its records are still in the WAL) or a compaction
// victim whose durable removal never happened (its records live in the
// merged table that the manifest does list). Then the WAL replays into the
// memtable.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("kv: Options.Dir is required")
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("kv: create dir: %w", err)
	}
	db := &DB{opts: opts, mem: newSkiplist(1), nextSeq: 1}
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}

	names, err := fsys.List(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("kv: list dir: %w", err)
	}
	// Uncommitted temp files never hold the only copy of anything: delete.
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := fsys.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, fmt.Errorf("kv: clean %s: %w", name, err)
			}
		}
	}

	live, haveManifest, err := readTables(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) || !strings.HasSuffix(name, sstSuffix) {
			continue
		}
		seq, perr := strconv.ParseUint(strings.TrimSuffix(name, sstSuffix), 10, 64)
		if perr != nil {
			continue // not one of ours
		}
		path := filepath.Join(opts.Dir, name)
		if haveManifest && !live[seq] {
			// Stale: uncommitted flush or unremoved compaction victim.
			if err := fsys.Remove(path); err != nil {
				db.releaseAll()
				return nil, fmt.Errorf("kv: clean stale sstable %s: %w", name, err)
			}
			continue
		}
		sr, err := openSSTable(fsys, path, seq, &db.stats, db.cache)
		if err != nil {
			db.releaseAll()
			return nil, err
		}
		sr.retain()
		db.tables = append(db.tables, sr)
		delete(live, seq)
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
	}
	if haveManifest && len(live) > 0 {
		db.releaseAll()
		return nil, fmt.Errorf("kv: manifest lists %d missing sstable(s) in %s", len(live), opts.Dir)
	}
	// Newest first so the merge heap prefers fresher versions.
	sort.Slice(db.tables, func(i, j int) bool { return db.tables[i].seq > db.tables[j].seq })

	// Replay the WAL into the memtable.
	walPath := filepath.Join(opts.Dir, walName)
	if err := replayWAL(fsys, walPath, func(kind byte, key, value []byte) {
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		db.mem.set(k, v, kind)
	}); err != nil {
		db.releaseAll()
		return nil, err
	}
	w, err := openWAL(fsys, walPath)
	if err != nil {
		db.releaseAll()
		return nil, err
	}
	db.wal = w
	if !haveManifest {
		// First open (or a pre-manifest directory): record the current table
		// set so later crash cleanup has a baseline.
		if err := db.writeTablesLocked(); err != nil {
			_ = db.wal.close()
			db.releaseAll()
			return nil, err
		}
	}
	// Make the (possibly new) WAL's directory entry durable: with SyncWrites
	// a record is acknowledged as durable the moment the file syncs, which
	// only holds if the file itself survives the crash.
	if err := fsys.SyncDir(opts.Dir); err != nil {
		_ = db.wal.close()
		db.releaseAll()
		return nil, fmt.Errorf("kv: sync dir: %w", err)
	}
	return db, nil
}

// readTables parses the TABLES manifest: a header line then one live table
// sequence number per line. Returns haveManifest=false when the file does
// not exist.
func readTables(fsys vfs.FS, dir string) (map[uint64]bool, bool, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, tablesName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("kv: read tables manifest: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != "tables v1" {
		return nil, false, fmt.Errorf("kv: tables manifest has bad header")
	}
	live := make(map[uint64]bool, len(lines)-1)
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		seq, err := strconv.ParseUint(ln, 10, 64)
		if err != nil {
			return nil, false, fmt.Errorf("kv: tables manifest has bad entry %q", ln)
		}
		live[seq] = true
	}
	return live, true, nil
}

// writeTablesLocked atomically replaces the TABLES manifest with the current
// table set (tmp file + sync + rename + directory fsync). This is the commit
// point for flushes and compactions: a table not listed here is deleted at
// the next Open.
func (db *DB) writeTablesLocked() error {
	var buf bytes.Buffer
	buf.WriteString("tables v1\n")
	for _, t := range db.tables {
		_, _ = fmt.Fprintf(&buf, "%d\n", t.seq)
	}
	fsys := db.opts.FS
	path := filepath.Join(db.opts.Dir, tablesName)
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("kv: write tables manifest: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: write tables manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: sync tables manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: close tables manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("kv: commit tables manifest: %w", err)
	}
	if err := fsys.SyncDir(db.opts.Dir); err != nil {
		return fmt.Errorf("kv: commit tables manifest: %w", err)
	}
	return nil
}

func (db *DB) releaseAll() {
	for _, t := range db.tables {
		t.release()
	}
	db.tables = nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(kindValue, key, value)
}

// Delete removes a key (by writing a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(kindTombstone, key, nil)
}

func (db *DB) write(kind byte, key, value []byte) error {
	if len(key) == 0 {
		return errEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	// A poisoned WAL (earlier append/sync failure, possibly torn bytes on
	// disk) must be rotated before accepting new records; flushing first
	// makes everything acknowledged so far durable in an SSTable.
	if db.wal.poisoned() {
		//lint:ignore lockheldio WAL healing must be exclusive: flush+rotate under db.mu is the recovery path for a poisoned log, not the steady-state write path the group-commit ROADMAP item will unlock
		if err := db.flushLocked(); err != nil {
			return fmt.Errorf("kv: wal unavailable: %w", err)
		}
	}
	n, err := db.wal.append(kind, key, value)
	if err != nil {
		return fmt.Errorf("kv: wal append: %w", err)
	}
	if db.opts.SyncWrites {
		if err := db.wal.sync(); err != nil {
			return fmt.Errorf("kv: wal sync: %w", err)
		}
	}
	db.stats.BytesWritten.Add(int64(n))
	db.stats.Puts.Add(1)
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	db.mem.set(k, v, kind)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.stats.Gets.Add(1)
	if n := db.mem.get(key); n != nil {
		var out []byte
		notFound := n.kind == kindTombstone
		if !notFound {
			out = append([]byte(nil), n.value...)
		}
		db.mu.Unlock()
		if notFound {
			return nil, ErrNotFound
		}
		return out, nil
	}
	// Retain the current table set, then search outside the lock.
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, t := range tables {
		v, kind, found, err := t.get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return nil, ErrNotFound
}

// Scan returns an iterator over [start, end); nil bounds are open. The
// iterator sees a snapshot of the memtable and the table set as of the call.
func (db *DB) Scan(start, end []byte) Iterator {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return &errIter{err: ErrClosed}
	}
	db.stats.Scans.Add(1)
	sources := []kvIter{snapshotMem(db.mem, start, end)}
	releases := make([]func(), 0, len(db.tables))
	for _, t := range db.tables {
		t.retain()
		tt := t
		releases = append(releases, func() { tt.release() })
		sources = append(sources, t.iter(start, end))
	}
	db.mu.Unlock()
	return newMergeIter(sources, &db.stats, releases)
}

// Flush persists the memtable to a new SSTable and truncates the WAL.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	//lint:ignore lockheldio Flush is the explicit durability barrier callers pay for: the SSTable write and WAL rotation must exclude writers until the group-commit ROADMAP item decouples them
	return db.flushLocked()
}

// flushLocked persists the memtable as an SSTable, commits it to the TABLES
// manifest and rotates the WAL. Crash ordering: the table file is durable
// before the manifest lists it, and the manifest lists it before the WAL
// (whose records it supersedes) is deleted — a crash between any two steps
// recovers every acknowledged record from either the table or the WAL.
//
// A flush also heals a poisoned WAL (see wal): once the memtable — which
// holds every acknowledged record — is durable in a table, the torn log can
// be rotated away. An empty memtable with a poisoned WAL rotates without
// writing a table.
func (db *DB) flushLocked() error {
	if db.mem.length == 0 {
		if db.wal.poisoned() {
			return db.rotateWALLocked()
		}
		return nil
	}
	seq := db.nextSeq
	sw, err := newSSTWriter(db.opts.FS, db.opts.Dir, seq, db.mem.length)
	if err != nil {
		return err
	}
	it := db.mem.iter(nil, nil)
	for it.Next() {
		if err := sw.add(it.Kind(), it.Key(), it.Value()); err != nil {
			sw.abort()
			return err
		}
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(db.opts.FS, sw.final, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.nextSeq++
	db.stats.BytesWritten.Add(size)
	db.stats.Flushes.Add(1)
	db.tables = append([]*sstReader{sr}, db.tables...)
	db.mem = newSkiplist(int64(seq))

	// Commit point: without this the new table is deleted at the next Open
	// (and its records recovered from the still-intact WAL instead).
	if err := db.writeTablesLocked(); err != nil {
		return err
	}

	// The WAL's contents are durable in the committed SSTable now.
	if err := db.rotateWALLocked(); err != nil {
		return err
	}

	if db.opts.CompactAt > 0 && len(db.tables) >= db.opts.CompactAt {
		return db.compactTablesLocked(db.pickTierLocked())
	}
	return nil
}

// rotateWALLocked replaces the WAL with a fresh, empty one. Callers must
// ensure every acknowledged record is durable elsewhere first. On failure
// the store keeps a permanently-poisoned WAL so writes keep failing (and
// keep retrying the rotation) rather than silently appending to a log in an
// unknown state.
func (db *DB) rotateWALLocked() error {
	fsys := db.opts.FS
	// Close errors are deliberately ignored: the file is about to be
	// deleted, and a poisoned WAL cannot flush its buffer anyway.
	_ = db.wal.close()
	walPath := filepath.Join(db.opts.Dir, walName)
	if err := fsys.Remove(walPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		db.wal = brokenWAL(err)
		return err
	}
	w, err := openWAL(fsys, walPath)
	if err != nil {
		db.wal = brokenWAL(err)
		return err
	}
	// Make the new WAL's directory entry (and the old one's removal)
	// durable; otherwise SyncWrites acknowledgements into a file that
	// vanishes with the crash would be lies.
	if err := fsys.SyncDir(db.opts.Dir); err != nil {
		_ = w.close()
		db.wal = brokenWAL(err)
		return err
	}
	db.wal = w
	return nil
}

// pickTierLocked chooses how many of the newest tables to merge: the longest
// newest-first prefix in which no table dwarfs the data accumulated so far
// (size-tiered compaction). Merging stops before a much larger, older table
// so steady-state write amplification stays logarithmic instead of linear.
func (db *DB) pickTierLocked() int {
	n := 1
	acc := db.tables[0].count
	for n < len(db.tables) && db.tables[n].count <= 4*acc {
		acc += db.tables[n].count
		n++
	}
	if n < 2 {
		n = 2 // merging a single table is a no-op; take the next one along
	}
	if n > len(db.tables) {
		n = len(db.tables)
	}
	return n
}

// Compact merges every SSTable into one, dropping shadowed versions and
// tombstones. The memtable is flushed first.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.mem.length > 0 {
		//lint:ignore lockheldio Compact drains the memtable under db.mu so the merged output supersedes everything; the long I/O tail after this flush already runs outside the lock
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	return db.compactTablesLocked(len(db.tables))
}

// compactTablesLocked merges the n newest tables into one. Tombstones are
// dropped only when every table participates — a partial merge must keep
// them so they continue to shadow versions in the older tables.
func (db *DB) compactTablesLocked(n int) error {
	if n > len(db.tables) {
		n = len(db.tables)
	}
	if n <= 1 {
		return nil
	}
	full := n == len(db.tables)
	victims := db.tables[:n]

	sources := make([]kvIter, 0, n)
	var total int64
	for _, t := range victims {
		sources = append(sources, t.iter(nil, nil))
		total += t.count
	}
	seq := db.nextSeq
	sw, err := newSSTWriter(db.opts.FS, db.opts.Dir, seq, int(total))
	if err != nil {
		return err
	}
	merged := newMergeIter(sources, nil, nil)
	merged.keepTombstones = !full
	for merged.Next() {
		if err := sw.add(merged.kind, merged.Key(), merged.Value()); err != nil {
			sw.abort()
			_ = merged.Close()
			return err
		}
	}
	if err := merged.Err(); err != nil {
		sw.abort()
		_ = merged.Close()
		return err
	}
	if err := merged.Close(); err != nil {
		sw.abort()
		return err
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	sr, err := openSSTable(db.opts.FS, sw.final, seq, &db.stats, db.cache)
	if err != nil {
		return err
	}
	sr.retain()
	db.nextSeq++
	db.stats.BytesWritten.Add(size)
	db.stats.Compactions.Add(1)
	remainder := db.tables[n:]
	db.tables = append([]*sstReader{sr}, remainder...)

	// Commit point: the manifest swap makes the merged table live and the
	// victims stale in one atomic step. This is what keeps a full
	// compaction's tombstone dropping crash-safe — if any victim file
	// outlives a crash (its deletion below was not yet durable), Open sees
	// it is unlisted and deletes it, so a dropped tombstone's shadowed
	// versions cannot resurrect.
	if err := db.writeTablesLocked(); err != nil {
		// The merged table serves reads in this process but is stale on
		// disk; at the next Open it is deleted and the still-listed victims
		// (whose files remain, not marked obsolete) take over. Identical
		// contents either way.
		for _, t := range victims {
			if db.cache != nil {
				db.cache.dropTable(t.seq)
			}
			t.release()
		}
		return err
	}
	for _, t := range victims {
		t.obsolete.Store(true)
		if db.cache != nil {
			db.cache.dropTable(t.seq)
		}
		t.release()
	}
	return nil
}

// Verify walks every SSTable block and checks its checksum, returning the
// first corruption found. The memtable and WAL are not covered (the WAL
// self-verifies on replay). Useful after copying store directories around.
func (db *DB) Verify() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	for _, t := range tables {
		for i := range t.index {
			if err := t.verifyBlock(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the store's I/O counters.
func (db *DB) Stats() StatsSnapshot {
	return db.stats.snapshot()
}

// Tables returns the current SSTable count (for tests and monitoring).
func (db *DB) Tables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// Close flushes the WAL buffer and releases every table. Open iterators keep
// their retained tables alive until they are closed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	err := db.wal.close()
	db.releaseAll()
	return err
}

// errIter is an Iterator that immediately fails with a fixed error.
type errIter struct{ err error }

func (e *errIter) Next() bool    { return false }
func (e *errIter) Key() []byte   { return nil }
func (e *errIter) Value() []byte { return nil }
func (e *errIter) Err() error    { return e.err }
func (e *errIter) Close() error  { return nil }
