package kv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/vfs"
)

// SSTable format:
//
//	[data block]* [index block] [bloom block] [footer]
//
// A data block is a run of entries `kind | klen | key | vlen | value`
// (varint lengths), cut at targetBlockSize. The index block holds one entry
// per data block: first key, file offset, length and CRC. The footer is
// fixed-size so a reader can find everything from the end of the file.
//
// Crash safety: the writer streams into `<name>.sst.tmp` and, at finish,
// syncs the file, renames it to its final name and fsyncs the directory.
// A crash mid-write leaves only a `.tmp` file, deleted at the next Open;
// after finish returns, the table survives power loss.

const (
	targetBlockSize = 4 << 10
	footerSize      = 48
	tableMagic      = 0x7452615353746266 // "tRaSStbf"

	sstSuffix = ".sst"
	tmpSuffix = ".tmp"
)

// sstPath returns the final path of table seq inside dir.
func sstPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%012d%s", seq, sstSuffix))
}

// sstWriter streams sorted entries into an SSTable file.
type sstWriter struct {
	fs      vfs.FS
	f       vfs.File
	dir     string
	tmp     string
	final   string
	w       *bufio.Writer
	off     int64
	block   []byte
	index   []indexEntry
	bloom   *bloomFilter
	count   int64
	lastKey []byte
	first   bool
}

type indexEntry struct {
	firstKey []byte
	offset   int64
	length   int64
	crc      uint32
}

func newSSTWriter(fsys vfs.FS, dir string, seq uint64, expectedKeys int) (*sstWriter, error) {
	final := sstPath(dir, seq)
	tmp := final + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("kv: create sstable: %w", err)
	}
	return &sstWriter{
		fs:    fsys,
		f:     f,
		dir:   dir,
		tmp:   tmp,
		final: final,
		w:     bufio.NewWriterSize(f, 256<<10),
		bloom: newBloomFilter(expectedKeys),
		first: true,
	}, nil
}

// add appends an entry; keys must arrive in strictly ascending order.
func (sw *sstWriter) add(kind byte, key, value []byte) error {
	if !sw.first && bytes.Compare(key, sw.lastKey) <= 0 {
		return fmt.Errorf("kv: sstable keys out of order: %q after %q", key, sw.lastKey)
	}
	sw.first = false
	sw.lastKey = append(sw.lastKey[:0], key...)

	if len(sw.block) == 0 {
		sw.index = append(sw.index, indexEntry{
			firstKey: append([]byte(nil), key...),
			offset:   sw.off,
		})
	}
	sw.block = append(sw.block, kind)
	sw.block = binary.AppendUvarint(sw.block, uint64(len(key)))
	sw.block = append(sw.block, key...)
	sw.block = binary.AppendUvarint(sw.block, uint64(len(value)))
	sw.block = append(sw.block, value...)
	sw.bloom.add(key)
	sw.count++

	if len(sw.block) >= targetBlockSize {
		return sw.finishBlock()
	}
	return nil
}

func (sw *sstWriter) finishBlock() error {
	if len(sw.block) == 0 {
		return nil
	}
	ie := &sw.index[len(sw.index)-1]
	ie.length = int64(len(sw.block))
	ie.crc = crc32.ChecksumIEEE(sw.block)
	if _, err := sw.w.Write(sw.block); err != nil {
		return err
	}
	sw.off += int64(len(sw.block))
	sw.block = sw.block[:0]
	return nil
}

// finish writes the index, bloom filter and footer, syncs the file, renames
// it from its .tmp name to the final one and fsyncs the directory, so the
// finished table is atomically visible and durable. It returns the total
// file size.
func (sw *sstWriter) finish() (int64, error) {
	if err := sw.finishBlock(); err != nil {
		sw.abort()
		return 0, err
	}
	indexOff := sw.off
	var idx []byte
	for _, ie := range sw.index {
		idx = binary.AppendUvarint(idx, uint64(len(ie.firstKey)))
		idx = append(idx, ie.firstKey...)
		idx = binary.AppendUvarint(idx, uint64(ie.offset))
		idx = binary.AppendUvarint(idx, uint64(ie.length))
		idx = binary.AppendUvarint(idx, uint64(ie.crc))
	}
	if _, err := sw.w.Write(idx); err != nil {
		sw.abort()
		return 0, err
	}
	bloomOff := indexOff + int64(len(idx))
	bl := sw.bloom.encode()
	if _, err := sw.w.Write(bl); err != nil {
		sw.abort()
		return 0, err
	}

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(bl)))
	binary.LittleEndian.PutUint64(footer[32:40], uint64(sw.count))
	binary.LittleEndian.PutUint64(footer[40:48], tableMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		sw.abort()
		return 0, err
	}
	if err := sw.w.Flush(); err != nil {
		sw.abort()
		return 0, err
	}
	if err := sw.f.Sync(); err != nil {
		sw.abort()
		return 0, err
	}
	if err := sw.f.Close(); err != nil {
		_ = sw.fs.Remove(sw.tmp)
		return 0, err
	}
	if err := sw.fs.Rename(sw.tmp, sw.final); err != nil {
		_ = sw.fs.Remove(sw.tmp)
		return 0, fmt.Errorf("kv: commit sstable: %w", err)
	}
	if err := sw.fs.SyncDir(sw.dir); err != nil {
		// The rename happened but is not durable; the caller must not treat
		// the table as committed. Leave the file for Open-time cleanup.
		return 0, fmt.Errorf("kv: commit sstable: %w", err)
	}
	size := bloomOff + int64(len(bl)) + footerSize
	return size, nil
}

func (sw *sstWriter) abort() {
	_ = sw.f.Close()
	_ = sw.fs.Remove(sw.tmp)
}

// sstReader serves point and range reads from one SSTable. The block index
// and bloom filter stay in memory; data blocks are read on demand. Readers
// are reference-counted: open scans retain them so a concurrent compaction
// cannot close or delete the file out from under an iterator.
type sstReader struct {
	fs       vfs.FS
	f        vfs.File
	path     string
	seq      uint64 // file sequence number: larger = newer data
	index    []indexEntry
	bloom    *bloomFilter
	count    int64
	stats    *Stats
	cache    *blockCache // shared per-DB; nil disables caching
	refs     atomic.Int32
	obsolete atomic.Bool // remove the file once the last reference drops
}

func (sr *sstReader) retain() { sr.refs.Add(1) }

// release drops one reference; the last drop closes the file and, for
// compacted-away tables, removes it from disk. This is the refcount-drain
// reaper: compaction marks a victim obsolete and drops the table set's
// reference, but snapshots and open iterators hold their own, so the unlink
// happens only when the last of them releases — a long scan keeps reading a
// retired table and the file vanishes the moment nobody can.
func (sr *sstReader) release() {
	if sr.refs.Add(-1) > 0 {
		return
	}
	_ = sr.f.Close()
	if sr.obsolete.Load() {
		_ = sr.fs.Remove(sr.path)
		if sr.stats != nil {
			sr.stats.ObsoleteTables.Add(-1)
		}
	}
}

func openSSTable(fsys vfs.FS, path string, seq uint64, stats *Stats, cache *blockCache) (*sstReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kv: open sstable: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if size < footerSize {
		_ = f.Close()
		return nil, fmt.Errorf("kv: sstable %s too small", path)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], size-footerSize); err != nil {
		_ = f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:48]) != tableMagic {
		_ = f.Close()
		return nil, fmt.Errorf("kv: sstable %s has bad magic", path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[16:24]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[24:32]))
	count := int64(binary.LittleEndian.Uint64(footer[32:40]))
	if indexOff < 0 || indexLen < 0 || bloomOff < 0 || bloomLen < 0 ||
		indexOff+indexLen > size || bloomOff+bloomLen > size {
		_ = f.Close()
		return nil, fmt.Errorf("kv: sstable %s has corrupt footer", path)
	}

	idxBuf := make([]byte, indexLen)
	if _, err := f.ReadAt(idxBuf, indexOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	var index []indexEntry
	for len(idxBuf) > 0 {
		klen, sz := binary.Uvarint(idxBuf)
		if sz <= 0 || uint64(len(idxBuf)-sz) < klen {
			_ = f.Close()
			return nil, fmt.Errorf("kv: sstable %s has corrupt index", path)
		}
		idxBuf = idxBuf[sz:]
		key := append([]byte(nil), idxBuf[:klen]...)
		idxBuf = idxBuf[klen:]
		var vals [3]uint64
		for i := range vals {
			v, sz := binary.Uvarint(idxBuf)
			if sz <= 0 {
				_ = f.Close()
				return nil, fmt.Errorf("kv: sstable %s has corrupt index", path)
			}
			idxBuf = idxBuf[sz:]
			vals[i] = v
		}
		index = append(index, indexEntry{
			firstKey: key,
			offset:   int64(vals[0]),
			length:   int64(vals[1]),
			crc:      uint32(vals[2]),
		})
	}

	blBuf := make([]byte, bloomLen)
	if _, err := f.ReadAt(blBuf, bloomOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	bloom, ok := decodeBloomFilter(blBuf)
	if !ok {
		_ = f.Close()
		return nil, fmt.Errorf("kv: sstable %s has corrupt bloom filter", path)
	}
	return &sstReader{fs: fsys, f: f, path: path, seq: seq, index: index, bloom: bloom, count: count, stats: stats, cache: cache}, nil
}

func (sr *sstReader) close() error { return sr.f.Close() }

// readBlock fetches and verifies data block i, consulting the block cache
// first. Returned blocks may be shared with other readers: treat as
// read-only.
func (sr *sstReader) readBlock(i int) ([]byte, error) {
	key := blockKey{seq: sr.seq, block: i}
	if sr.cache != nil {
		if buf := sr.cache.get(key); buf != nil {
			sr.stats.CacheHits.Add(1)
			return buf, nil
		}
	}
	ie := sr.index[i]
	buf := make([]byte, ie.length)
	if _, err := sr.f.ReadAt(buf, ie.offset); err != nil {
		return nil, fmt.Errorf("kv: read block: %w", err)
	}
	if crc32.ChecksumIEEE(buf) != ie.crc {
		return nil, fmt.Errorf("kv: sstable %s block %d checksum mismatch", sr.path, i)
	}
	sr.stats.BlocksRead.Add(1)
	sr.stats.BytesRead.Add(ie.length)
	if sr.cache != nil {
		sr.cache.put(key, buf)
	}
	return buf, nil
}

// verifyBlock re-reads block i from disk (bypassing the cache) and checks
// its checksum.
func (sr *sstReader) verifyBlock(i int) error {
	ie := sr.index[i]
	buf := make([]byte, ie.length)
	if _, err := sr.f.ReadAt(buf, ie.offset); err != nil {
		return fmt.Errorf("kv: verify read: %w", err)
	}
	if crc32.ChecksumIEEE(buf) != ie.crc {
		return fmt.Errorf("kv: sstable %s block %d checksum mismatch", sr.path, i)
	}
	return nil
}

// blockFor returns the index of the block that could contain key: the last
// block whose first key is <= key.
func (sr *sstReader) blockFor(key []byte) int {
	i := sort.Search(len(sr.index), func(i int) bool {
		return bytes.Compare(sr.index[i].firstKey, key) > 0
	})
	return i - 1
}

// get performs a point lookup. Returns (value, kind, found, error).
func (sr *sstReader) get(key []byte) ([]byte, byte, bool, error) {
	if !sr.bloom.mayContain(key) {
		sr.stats.BloomNegative.Add(1)
		return nil, 0, false, nil
	}
	bi := sr.blockFor(key)
	if bi < 0 {
		return nil, 0, false, nil
	}
	block, err := sr.readBlock(bi)
	if err != nil {
		return nil, 0, false, err
	}
	for pos := 0; pos < len(block); {
		kind, k, v, next, err := decodeEntry(block, pos)
		if err != nil {
			return nil, 0, false, err
		}
		switch bytes.Compare(k, key) {
		case 0:
			return v, kind, true, nil
		case 1:
			return nil, 0, false, nil
		}
		pos = next
	}
	return nil, 0, false, nil
}

// decodeEntry parses one entry at pos, returning the next position.
func decodeEntry(block []byte, pos int) (kind byte, key, value []byte, next int, err error) {
	if pos >= len(block) {
		return 0, nil, nil, 0, fmt.Errorf("kv: entry out of block bounds")
	}
	kind = block[pos]
	pos++
	klen, sz := binary.Uvarint(block[pos:])
	if sz <= 0 || pos+sz+int(klen) > len(block) {
		return 0, nil, nil, 0, fmt.Errorf("kv: corrupt entry key")
	}
	pos += sz
	key = block[pos : pos+int(klen)]
	pos += int(klen)
	vlen, sz := binary.Uvarint(block[pos:])
	if sz <= 0 || pos+sz+int(vlen) > len(block) {
		return 0, nil, nil, 0, fmt.Errorf("kv: corrupt entry value")
	}
	pos += sz
	value = block[pos : pos+int(vlen)]
	pos += int(vlen)
	return kind, key, value, pos, nil
}

// sstIter iterates one SSTable over [start, end).
type sstIter struct {
	sr       *sstReader
	blockIdx int
	block    []byte
	pos      int
	start    []byte
	end      []byte
	kind     byte
	key      []byte
	value    []byte
	err      error
	started  bool
}

func (sr *sstReader) iter(start, end []byte) *sstIter {
	return &sstIter{sr: sr, start: start, end: end}
}

func (it *sstIter) Next() bool {
	if it.err != nil {
		return false
	}
	if !it.started {
		it.started = true
		bi := 0
		if it.start != nil {
			if bi = it.sr.blockFor(it.start); bi < 0 {
				bi = 0
			}
		}
		it.blockIdx = bi
		if !it.loadBlock() {
			return false
		}
		// Skip entries before start inside the first block.
		for {
			if !it.step() {
				return false
			}
			if it.start == nil || bytes.Compare(it.key, it.start) >= 0 {
				break
			}
		}
		return it.checkEnd()
	}
	if !it.step() {
		return false
	}
	return it.checkEnd()
}

func (it *sstIter) checkEnd() bool {
	if it.end != nil && bytes.Compare(it.key, it.end) >= 0 {
		it.block = nil
		it.blockIdx = len(it.sr.index)
		return false
	}
	return true
}

// loadBlock reads block blockIdx; false when past the last block.
func (it *sstIter) loadBlock() bool {
	if it.blockIdx >= len(it.sr.index) {
		return false
	}
	block, err := it.sr.readBlock(it.blockIdx)
	if err != nil {
		it.err = err
		return false
	}
	it.block = block
	it.pos = 0
	return true
}

// step advances one entry, crossing block boundaries.
func (it *sstIter) step() bool {
	for it.pos >= len(it.block) {
		it.blockIdx++
		if !it.loadBlock() {
			return false
		}
	}
	kind, k, v, next, err := decodeEntry(it.block, it.pos)
	if err != nil {
		it.err = err
		return false
	}
	it.kind, it.key, it.value, it.pos = kind, k, v, next
	return true
}

func (it *sstIter) Key() []byte   { return it.key }
func (it *sstIter) Value() []byte { return it.value }
func (it *sstIter) Kind() byte    { return it.kind }
func (it *sstIter) Err() error    { return it.err }
func (it *sstIter) Close() error  { it.block = nil; return nil }
