package kv

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
	"repro/internal/vfs/vfstest"
)

// Torture suite: run a deterministic put/delete/flush/compact workload on the
// fault-injection filesystem, fail or crash at every mutating filesystem
// operation in turn, reopen, and check the store against the
// acknowledged-writes model — nothing acknowledged may be lost, nothing
// never-written may appear, and Verify must pass.

const tortureDir = "torture"

func tortureOpts(fsys vfs.FS) Options {
	return Options{
		Dir:           tortureDir,
		FS:            fsys,
		SyncWrites:    true,
		MemtableBytes: 2 << 10, // force several auto-flushes
		CompactAt:     3,       // and automatic compactions
	}
}

// tortureWorkload drives db deterministically, recording every op's
// acknowledgement in model. It stops at the first simulated-crash error
// (the "process" died); other errors are recorded and the workload carries
// on, exercising the poisoned-WAL healing path.
type tortureWorkload struct {
	db      *DB
	model   *vfstest.Model
	crashed bool
}

func (w *tortureWorkload) sawCrash(err error) bool {
	if errors.Is(err, vfs.ErrCrashed) {
		w.crashed = true
	}
	return w.crashed
}

func (w *tortureWorkload) put(k, v string) {
	if w.crashed {
		return
	}
	err := w.db.Put([]byte(k), []byte(v))
	w.model.Put(k, v, err == nil)
	w.sawCrash(err)
}

func (w *tortureWorkload) del(k string) {
	if w.crashed {
		return
	}
	err := w.db.Delete([]byte(k))
	w.model.Delete(k, err == nil)
	w.sawCrash(err)
}

func (w *tortureWorkload) apply(b *Batch, keys, vals []string) {
	if w.crashed {
		return
	}
	err := w.db.Apply(b)
	for i, k := range keys {
		if vals[i] == "" {
			w.model.Delete(k, err == nil)
		} else {
			w.model.Put(k, vals[i], err == nil)
		}
	}
	w.sawCrash(err)
}

func (w *tortureWorkload) flush() {
	if w.crashed {
		return
	}
	w.sawCrash(w.db.Flush())
}

func (w *tortureWorkload) compact() {
	if w.crashed {
		return
	}
	w.sawCrash(w.db.Compact())
}

// run is the complete deterministic workload: enough volume for auto-flushes
// and a tiered compaction, plus deletes, overwrites, a batch, and explicit
// flush/compact calls.
func (w *tortureWorkload) run() {
	val := func(i, round int) string {
		return fmt.Sprintf("value-%03d-%d-%s", i, round, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	for i := 0; i < 24; i++ {
		w.put(fmt.Sprintf("k%03d", i), val(i, 0))
	}
	w.flush()
	for i := 0; i < 24; i += 2 {
		w.put(fmt.Sprintf("k%03d", i), val(i, 1))
	}
	for i := 1; i < 12; i += 3 {
		w.del(fmt.Sprintf("k%03d", i))
	}
	w.flush()

	var b Batch
	var bkeys, bvals []string
	for i := 24; i < 32; i++ {
		k := fmt.Sprintf("k%03d", i)
		v := val(i, 2)
		b.Put([]byte(k), []byte(v))
		bkeys = append(bkeys, k)
		bvals = append(bvals, v)
	}
	b.Delete([]byte("k000"))
	bkeys = append(bkeys, "k000")
	bvals = append(bvals, "")
	w.apply(&b, bkeys, bvals)

	w.compact()
	for i := 0; i < 16; i++ {
		w.put(fmt.Sprintf("k%03d", i+32), val(i+32, 3))
	}
	w.del("k002")
	w.flush()
}

// countFaultPoints runs the workload once with a recording hook and returns
// the op numbers of every mutating filesystem operation.
func countFaultPoints(t *testing.T) []int {
	t.Helper()
	fsys := vfs.NewFault()
	var points []int
	fsys.SetInject(func(op vfs.Op) vfs.Fault {
		if op.Kind.Mutating() {
			points = append(points, op.N)
		}
		return vfs.FaultNone
	})
	db, err := Open(tortureOpts(fsys))
	if err != nil {
		t.Fatalf("baseline open: %v", err)
	}
	w := &tortureWorkload{db: db, model: vfstest.NewModel()}
	w.run()
	if w.crashed {
		t.Fatal("baseline run crashed without injection")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	if len(points) < 50 {
		t.Fatalf("workload produced only %d fault points; too small to be meaningful", len(points))
	}
	return points
}

// strided thins the fault-point list under -short so the suite stays quick;
// full enumeration otherwise.
func strided(t *testing.T, points []int) []int {
	if !testing.Short() {
		return points
	}
	stride := len(points)/40 + 1
	var out []int
	for i := 0; i < len(points); i += stride {
		out = append(out, points[i])
	}
	return out
}

// checkRecovered reopens the store with injection disarmed and verifies the
// recovered contents against the model.
func checkRecovered(t *testing.T, fsys *vfs.FaultFS, model *vfstest.Model, point int) {
	t.Helper()
	fsys.SetInject(nil)
	db, err := Open(tortureOpts(fsys))
	if err != nil {
		t.Fatalf("fault point %d: reopen: %v", point, err)
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		t.Fatalf("fault point %d: Verify: %v", point, err)
	}
	err = model.CheckAll(func(key string) (string, bool, error) {
		v, err := db.Get([]byte(key))
		if err == ErrNotFound {
			return "", false, nil
		}
		if err != nil {
			return "", false, err
		}
		return string(v), true, nil
	})
	if err != nil {
		t.Fatalf("fault point %d: %v", point, err)
	}
	// A full scan must not surface anything the model never saw, and every
	// surfaced value must be a legal (acked or in-flight) value for its key.
	it := db.Scan(nil, nil)
	defer it.Close()
	for it.Next() {
		if err := model.Check(string(it.Key()), string(it.Value()), true); err != nil {
			t.Fatalf("fault point %d: scan: %v", point, err)
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("fault point %d: scan: %v", point, err)
	}
}

// TestKVCrashTorture simulates a power loss at every mutating filesystem
// operation of the workload and checks recovery.
func TestKVCrashTorture(t *testing.T) {
	points := strided(t, countFaultPoints(t))
	for _, p := range points {
		point := p
		fsys := vfs.NewFault()
		fsys.SetInject(func(op vfs.Op) vfs.Fault {
			if op.N == point {
				return vfs.FaultCrash
			}
			return vfs.FaultNone
		})
		db, err := Open(tortureOpts(fsys))
		model := vfstest.NewModel()
		if err == nil {
			w := &tortureWorkload{db: db, model: model}
			w.run()
			// The "process" is dead: stop its background goroutines before
			// reopening the directory, as a real exit would. Errors are
			// expected — the WAL handle died with the crash.
			_ = db.Close()
		} else if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("fault point %d: open failed non-crash: %v", point, err)
		}
		checkRecovered(t, fsys, model, point)
	}
}

// TestKVErrorTorture injects a single permanent error, torn write, or
// disk-full at every mutating operation in turn; the workload continues
// best-effort (exercising poisoned-WAL healing and flush retry), then the
// machine "loses power" and the store must recover everything acknowledged.
func TestKVErrorTorture(t *testing.T) {
	points := strided(t, countFaultPoints(t))
	for _, kind := range []vfs.Fault{vfs.FaultErr, vfs.FaultTorn, vfs.FaultDiskFull} {
		kind := kind
		t.Run(fmt.Sprintf("fault%d", int(kind)), func(t *testing.T) {
			for _, p := range points {
				point := p
				fsys := vfs.NewFault()
				fsys.SetInject(func(op vfs.Op) vfs.Fault {
					if op.N == point {
						return kind
					}
					return vfs.FaultNone
				})
				model := vfstest.NewModel()
				db, err := Open(tortureOpts(fsys))
				if err == nil {
					w := &tortureWorkload{db: db, model: model}
					w.run()
					if w.crashed {
						t.Fatalf("fault point %d: error injection caused crash error", point)
					}
					// Quiesce the background goroutines before the simulated
					// power loss; Close may fail on a poisoned WAL.
					_ = db.Close()
				}
				// Power loss after the (possibly degraded) run: only
				// acknowledged state may be counted on.
				fsys.Crash()
				checkRecovered(t, fsys, model, point)
			}
		})
	}
}

// TestWALTornTailEveryOffset truncates a synced WAL at every byte offset and
// asserts replay recovers exactly the records whose bytes fully survived —
// the acknowledged prefix — and nothing after the tear.
func TestWALTornTailEveryOffset(t *testing.T) {
	// Build a WAL with known record boundaries.
	fsys := vfs.NewFault()
	opts := Options{Dir: tortureDir, FS: fsys, SyncWrites: true}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	boundaries := make([]int64, 0, n) // WAL size after each record
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("value-%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := db.runOnCommitter(func() error {
			boundaries = append(boundaries, db.wal.size)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(tortureDir, walName)
	walBytes, err := vfs.ReadFile(fsys, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != boundaries[n-1] {
		t.Fatalf("wal size %d != last boundary %d", len(walBytes), boundaries[n-1])
	}

	offsets := make([]int, 0, len(walBytes)+1)
	if testing.Short() {
		for off := 0; off <= len(walBytes); off += 7 {
			offsets = append(offsets, off)
		}
		offsets = append(offsets, len(walBytes))
	} else {
		for off := 0; off <= len(walBytes); off++ {
			offsets = append(offsets, off)
		}
	}
	for _, off := range offsets {
		// Rebuild a directory whose WAL is the truncated prefix.
		tfs := vfs.NewFault()
		if err := tfs.MkdirAll(tortureDir); err != nil {
			t.Fatal(err)
		}
		f, err := tfs.Create(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(walBytes[:off]); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tfs.SyncDir(tortureDir); err != nil {
			t.Fatal(err)
		}
		// How many complete records fit in off bytes?
		want := 0
		for want < n && boundaries[want] <= int64(off) {
			want++
		}
		db2, err := Open(Options{Dir: tortureDir, FS: tfs, SyncWrites: true})
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		for i := 0; i < n; i++ {
			got, err := db2.Get([]byte(fmt.Sprintf("k%02d", i)))
			if i < want {
				if err != nil || string(got) != fmt.Sprintf("value-%02d", i) {
					t.Fatalf("offset %d: record %d (intact prefix) lost: %q, %v", off, i, got, err)
				}
			} else if err != ErrNotFound {
				t.Fatalf("offset %d: record %d beyond tear resurfaced: %q, %v", off, i, got, err)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
	}
}
