package kv

import "sync"

// MVCC snapshot reads. A Snapshot pins an immutable point-in-time view of the
// store — the frozen memtable stack plus a refcounted handle on every live
// SSTable — in one short critical section, after which every read it serves
// runs without touching db.mu at all. Writers never wait for readers and
// readers never wait for writers: the committer keeps appending to a fresh
// active memtable while the snapshot iterates the frozen ones, and compaction
// retires tables underneath the snapshot freely because the snapshot's
// references defer the physical unlink until the last release (the
// refcount-drain reaper in sstReader.release).
//
// The memtable side works by freezing: Snapshot moves a non-empty active
// memtable onto the frozen stack (an O(1) pointer move — no entry is copied),
// where it becomes immutable and therefore safe to iterate lock-free. The
// committer starts a fresh active list and the next flush merges the whole
// frozen stack into one SSTable. This replaces the old snapshotMem path,
// which copied the entire memtable under db.mu on every scan.

// maxFrozenMemtables bounds the frozen stack: scan-heavy interleaved
// workloads freeze lots of tiny memtables, and the committer forces a flush
// once the stack reaches this depth even if the byte threshold is far away,
// so reads never merge an unbounded number of memtable sources.
const maxFrozenMemtables = 8

// Snapshot is an immutable point-in-time view of one store. All methods are
// safe for concurrent use with each other and with writes to the parent DB;
// Close releases the pinned resources and must be called exactly once per
// snapshot (reads racing Close get ErrClosed, never a torn view).
//
// A Snapshot outlives its DB: reads keep working after DB.Close because the
// snapshot holds its own table references — the cluster layer relies on this
// to let region splits retire a region's store under a long scan.
type Snapshot struct {
	db *DB

	// mems and tables are immutable after construction (guarded only for the
	// Close handshake): the frozen memtables newest first, then the SSTables
	// newest first, forming the full read path in recency order.
	mu     sync.Mutex
	closed bool
	mems   []*skiplist
	tables []*sstReader
}

// Snapshot pins the store's current state: the active memtable is frozen (if
// non-empty), the frozen stack and the table set are captured, and every
// table is retained. One short db.mu section; no I/O, no copying of entries.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.freezeLocked()
	mems := make([]*skiplist, len(db.frozen))
	copy(mems, db.frozen)
	tables := make([]*sstReader, len(db.tables))
	copy(tables, db.tables)
	for _, t := range tables {
		t.retain()
	}
	db.mu.Unlock()
	db.stats.PinnedSnapshots.Add(1)
	return &Snapshot{db: db, mems: mems, tables: tables}, nil
}

// freezeLocked moves a non-empty active memtable onto the frozen stack and
// installs a fresh one. Caller holds db.mu. The frozen list is immutable from
// here on: the committer (the sole memtable mutator) only ever writes to
// db.mem, so snapshots iterate frozen lists without any lock.
func (db *DB) freezeLocked() {
	if db.mem.length == 0 {
		return
	}
	db.frozen = append([]*skiplist{db.mem}, db.frozen...)
	db.frozenBytes += db.mem.bytes
	db.mem = newSkiplist(int64(db.nextSeq))
	db.stats.FrozenMemtables.Add(1)
}

// pin captures the snapshot's sources for one read: the immutable memtable
// views plus a per-call reference on every table, so the read stays valid
// even if the snapshot is closed while it runs.
func (s *Snapshot) pin() ([]*skiplist, []*sstReader, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	mems, tables := s.mems, s.tables
	for _, t := range tables {
		t.retain()
	}
	s.mu.Unlock()
	return mems, tables, nil
}

// Get returns the value for key as of the snapshot, or ErrNotFound. Lock-free
// beyond the snapshot's own closed check: frozen memtables are immutable and
// the tables are pinned.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	mems, tables, err := s.pin()
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	s.db.stats.Gets.Add(1)
	for _, m := range mems {
		if n := m.get(key); n != nil {
			if n.kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), n.value...), nil
		}
	}
	for _, t := range tables {
		v, kind, found, err := t.get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if kind == kindTombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return nil, ErrNotFound
}

// Scan returns an iterator over [start, end) as of the snapshot; nil bounds
// are open. The iterator holds its own table references, so it stays valid
// even if the snapshot is closed while it is open.
func (s *Snapshot) Scan(start, end []byte) Iterator {
	return s.scan(start, end, nil)
}

// scan builds the merge iterator; extra (when non-nil) runs at iterator
// close, after the iterator's own releases — DB.Scan hooks the snapshot's
// release there so a plain Scan is a self-contained lease.
func (s *Snapshot) scan(start, end []byte, extra func()) Iterator {
	mems, tables, err := s.pin()
	if err != nil {
		if extra != nil {
			extra()
		}
		return &errIter{err: err}
	}
	s.db.stats.Scans.Add(1)
	sources := make([]kvIter, 0, len(mems)+len(tables))
	for _, m := range mems {
		sources = append(sources, m.iter(start, end))
	}
	releases := make([]func(), 0, len(tables)+1)
	for _, t := range tables {
		tt := t
		releases = append(releases, func() { tt.release() })
		sources = append(sources, t.iter(start, end))
	}
	if extra != nil {
		releases = append(releases, extra)
	}
	return newMergeIter(sources, &s.db.stats, releases)
}

// Close releases the snapshot's pinned tables. Idempotent; open iterators
// from Scan keep their own references and stay valid.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tables := s.tables
	s.mu.Unlock()
	for _, t := range tables {
		t.release()
	}
	s.db.stats.PinnedSnapshots.Add(-1)
	return nil
}
