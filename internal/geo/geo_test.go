package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); !almostEq(got, tc.want*tc.want) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Point{0.2, 0.3}, Point{0.6, 0.5}}
	if !almostEq(r.Width(), 0.4) || !almostEq(r.Height(), 0.2) {
		t.Fatalf("width/height wrong: %v %v", r.Width(), r.Height())
	}
	if !almostEq(r.Area(), 0.08) {
		t.Fatalf("area = %v", r.Area())
	}
	c := r.Center()
	if !almostEq(c.X, 0.4) || !almostEq(c.Y, 0.4) {
		t.Fatalf("center = %v", c)
	}
	if !r.ContainsPoint(Point{0.2, 0.3}) || !r.ContainsPoint(Point{0.6, 0.5}) {
		t.Error("corners must be contained (closed rect)")
	}
	if r.ContainsPoint(Point{0.61, 0.4}) {
		t.Error("point outside reported inside")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 {
		t.Fatal("empty rect area must be 0")
	}
	r := Rect{Point{0, 0}, Point{1, 1}}
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty rect must intersect nothing")
	}
	if !r.ContainsRect(e) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{Point{0.5, 0.5}, Point{2, 2}}, true},
		{Rect{Point{1, 1}, Point{2, 2}}, true}, // touching corner counts
		{Rect{Point{1.001, 0}, Point{2, 1}}, false},
		{Rect{Point{-1, -1}, Point{-0.5, -0.5}}, false},
		{Rect{Point{0.2, 0.2}, Point{0.3, 0.3}}, true}, // contained
	}
	for i, tc := range tests {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestBuffer(t *testing.T) {
	r := Rect{Point{0.4, 0.4}, Point{0.6, 0.6}}
	b := r.Buffer(0.1)
	want := Rect{Point{0.3, 0.3}, Point{0.7, 0.7}}
	if !almostEq(b.Min.X, want.Min.X) || !almostEq(b.Min.Y, want.Min.Y) ||
		!almostEq(b.Max.X, want.Max.X) || !almostEq(b.Max.Y, want.Max.Y) {
		t.Fatalf("Buffer = %v, want %v", b, want)
	}
}

func TestDistPointRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{0.5, 0.5}, 0},      // inside
		{Point{1, 1}, 0},          // corner
		{Point{2, 1}, 1},          // right of
		{Point{0.5, -2}, 2},       // below
		{Point{2, 2}, math.Sqrt2}, // diagonal
		{Point{-3, -4}, 5},        // diagonal other side
	}
	for _, tc := range tests {
		if got := DistPointRect(tc.p, r); !almostEq(got, tc.want) {
			t.Errorf("DistPointRect(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestDistRectRect(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		b    Rect
		want float64
	}{
		{Rect{Point{0.5, 0.5}, Point{2, 2}}, 0},
		{Rect{Point{2, 0}, Point{3, 1}}, 1},
		{Rect{Point{2, 2}, Point{3, 3}}, math.Sqrt2},
		{Rect{Point{-2, -3}, Point{-1, -1}}, math.Sqrt(1 + 1)},
	}
	for _, tc := range tests {
		if got := DistRectRect(a, tc.b); !almostEq(got, tc.want) {
			t.Errorf("DistRectRect(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := DistRectRect(tc.b, a); !almostEq(got, tc.want) {
			t.Errorf("DistRectRect not symmetric for %v", tc.b)
		}
	}
}

func TestDistPointSegment(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 0}}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 1},  // perpendicular onto interior
		{Point{-1, 0}, 1}, // beyond A
		{Point{3, 0}, 1},  // beyond B
		{Point{1, 0}, 0},  // on segment
		{Point{-3, 4}, 5}, // beyond A diagonal
	}
	for _, tc := range tests {
		if got := DistPointSegment(tc.p, s); !almostEq(got, tc.want) {
			t.Errorf("DistPointSegment(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate zero-length segment.
	z := Segment{Point{1, 1}, Point{1, 1}}
	if got := DistPointSegment(Point{4, 5}, z); !almostEq(got, 5) {
		t.Errorf("degenerate segment distance = %v, want 5", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		s1, s2 Segment
		want   bool
	}{
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{0, 1}, Point{1, 0}}, true},  // X crossing
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{1, 0}, Point{2, 0}}, true},  // shared endpoint
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{0, 1}, Point{1, 1}}, false}, // parallel
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true},  // collinear overlap
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false}, // collinear disjoint
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{2, 2}, Point{3, 3}}, false}, // collinear diagonal disjoint
		{Segment{Point{0, 0}, Point{0, 2}}, Segment{Point{-1, 1}, Point{1, 1}}, true}, // T junction
	}
	for i, tc := range tests {
		if got := SegmentsIntersect(tc.s1, tc.s2); got != tc.want {
			t.Errorf("case %d: intersect = %v, want %v", i, got, tc.want)
		}
		if got := SegmentsIntersect(tc.s2, tc.s1); got != tc.want {
			t.Errorf("case %d: intersect not symmetric", i)
		}
	}
}

func TestDistSegmentSegment(t *testing.T) {
	tests := []struct {
		s1, s2 Segment
		want   float64
	}{
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{0, 1}, Point{1, 0}}, 0},
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{0, 1}, Point{1, 1}}, 1},
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, 1},
		{Segment{Point{0, 0}, Point{0, 1}}, Segment{Point{3, 4}, Point{3, 5}}, 3 * math.Sqrt2 / 3 * math.Sqrt(1) * math.Hypot(3, 3) / math.Hypot(3, 3) * math.Hypot(3, 3) / math.Hypot(1, 0) / 3}, // computed below
	}
	// Fix the last expected value explicitly: closest points are (0,1) and (3,4).
	tests[3].want = math.Hypot(3, 3)
	for i, tc := range tests {
		if got := DistSegmentSegment(tc.s1, tc.s2); !almostEq(got, tc.want) {
			t.Errorf("case %d: dist = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		s    Segment
		want bool
	}{
		{Segment{Point{0.2, 0.2}, Point{0.8, 0.8}}, true}, // inside
		{Segment{Point{-1, 0.5}, Point{2, 0.5}}, true},    // crosses through
		{Segment{Point{-1, -1}, Point{-0.5, 2}}, false},   // left of
		{Segment{Point{-1, 1}, Point{1, -1}}, true},       // touches corner region; crosses
		{Segment{Point{-1, 2}, Point{2, 2}}, false},       // above
		{Segment{Point{1, 1}, Point{2, 2}}, true},         // endpoint on corner
		{Segment{Point{-1, 1.5}, Point{1.5, -1}}, true},   // clips the corner
	}
	for i, tc := range tests {
		if got := SegmentIntersectsRect(tc.s, r); got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestDistSegmentRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		s    Segment
		want float64
	}{
		{Segment{Point{0.5, 0.5}, Point{0.6, 0.6}}, 0},
		{Segment{Point{2, 0}, Point{2, 1}}, 1},
		{Segment{Point{2, 2}, Point{3, 3}}, math.Sqrt2},
		{Segment{Point{-1, 2}, Point{2, 2}}, 1},
	}
	for i, tc := range tests {
		if got := DistSegmentRect(tc.s, r); !almostEq(got, tc.want) {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestMBRPoints(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.2, 0.8}, {0.7, 0.1}}
	got := MBRPoints(pts)
	want := Rect{Point{0.2, 0.1}, Point{0.7, 0.8}}
	if got != want {
		t.Fatalf("MBR = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("MBRPoints(nil) must panic")
		}
	}()
	MBRPoints(nil)
}

func TestNormalizeLonLatRoundTrip(t *testing.T) {
	f := func(lon, lat float64) bool {
		lon = math.Mod(lon, 180)
		lat = math.Mod(lat, 90)
		p := NormalizeLonLat(lon, lat)
		lo, la := DenormalizeLonLat(p)
		return math.Abs(lo-lon) < 1e-9 && math.Abs(la-lat) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistPointPolyline(t *testing.T) {
	poly := []Point{{0, 0}, {1, 0}, {1, 1}}
	if got := DistPointPolyline(Point{0.5, 0.5}, poly); !almostEq(got, 0.5) {
		t.Errorf("got %v, want 0.5", got)
	}
	if got := DistPointPolyline(Point{2, 1}, poly); !almostEq(got, 1) {
		t.Errorf("got %v, want 1", got)
	}
	// Single-point polyline.
	if got := DistPointPolyline(Point{3, 4}, []Point{{0, 0}}); !almostEq(got, 5) {
		t.Errorf("got %v, want 5", got)
	}
	if got := DistPointPolyline(Point{0, 0}, nil); !math.IsInf(got, 1) {
		t.Errorf("empty polyline must be at infinite distance, got %v", got)
	}
}

func TestDistRectPolyline(t *testing.T) {
	poly := []Point{{0, 0}, {1, 0}}
	r := Rect{Point{0.4, 0.5}, Point{0.6, 1}}
	if got := DistRectPolyline(r, poly); !almostEq(got, 0.5) {
		t.Errorf("got %v, want 0.5", got)
	}
	touching := Rect{Point{0.4, 0}, Point{0.6, 1}}
	if got := DistRectPolyline(touching, poly); got != 0 {
		t.Errorf("touching rect must be at distance 0, got %v", got)
	}
	if got := DistRectPolyline(r, []Point{{0.5, 2}}); !almostEq(got, 1) {
		t.Errorf("single-point polyline: got %v, want 1", got)
	}
}

// Property: DistSegmentSegment is consistent with dense point sampling.
func TestDistSegmentSegmentSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		s1 := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		s2 := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		got := DistSegmentSegment(s1, s2)
		// Sampled upper bound on the true distance.
		const n = 64
		sampled := math.Inf(1)
		for i := 0; i <= n; i++ {
			f := float64(i) / n
			p := Point{s1.A.X + f*(s1.B.X-s1.A.X), s1.A.Y + f*(s1.B.Y-s1.A.Y)}
			if v := DistPointSegment(p, s2); v < sampled {
				sampled = v
			}
		}
		if got > sampled+1e-9 {
			t.Fatalf("iter %d: DistSegmentSegment=%v exceeds sampled %v", iter, got, sampled)
		}
		if sampled-got > 0.05 {
			t.Fatalf("iter %d: distance %v too far below sampled %v", iter, got, sampled)
		}
	}
}

// Property: DistPointRect equals brute-force distance to the rect edges for
// outside points, and 0 for inside points.
func TestDistPointRectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		x1, x2 := rng.Float64(), rng.Float64()
		y1, y2 := rng.Float64(), rng.Float64()
		r := Rect{Point{math.Min(x1, x2), math.Min(y1, y2)}, Point{math.Max(x1, x2), math.Max(y1, y2)}}
		p := Point{rng.Float64()*3 - 1, rng.Float64()*3 - 1}
		got := DistPointRect(p, r)
		if r.ContainsPoint(p) {
			if got != 0 {
				t.Fatalf("inside point dist = %v", got)
			}
			continue
		}
		want := math.Inf(1)
		for _, e := range r.Edges() {
			if v := DistPointSegment(p, e); v < want {
				want = v
			}
		}
		if !almostEq(got, want) {
			t.Fatalf("DistPointRect=%v brute=%v p=%v r=%v", got, want, p, r)
		}
	}
}
