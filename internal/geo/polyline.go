package geo

import "math"

// Polyline distance helpers. A polyline with a single point degenerates to
// that point; every routine below handles that case.

// DistPointPolyline returns the minimum distance from p to the polyline
// through pts.
func DistPointPolyline(p Point, pts []Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	if len(pts) == 1 {
		return p.Dist(pts[0])
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(pts); i++ {
		if v := dist2PointSegment(p, Segment{pts[i], pts[i+1]}); v < best {
			best = v
		}
	}
	return math.Sqrt(best)
}

// DistRectPolyline returns the minimum distance between the closed rect r and
// the polyline through pts (zero if they touch).
func DistRectPolyline(r Rect, pts []Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	if len(pts) == 1 {
		return DistPointRect(pts[0], r)
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(pts); i++ {
		v := DistSegmentRect(Segment{pts[i], pts[i+1]}, r)
		if v < best {
			best = v
			//lint:ignore floatcmp exact zero is a sound early exit for a nonnegative distance; a missed ulp only skips the shortcut
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// PolylineIntersectsRect reports whether the polyline through pts shares any
// point with the closed rect r.
func PolylineIntersectsRect(pts []Point, r Rect) bool {
	if len(pts) == 0 {
		return false
	}
	if len(pts) == 1 {
		return r.ContainsPoint(pts[0])
	}
	for i := 0; i+1 < len(pts); i++ {
		if SegmentIntersectsRect(Segment{pts[i], pts[i+1]}, r) {
			return true
		}
	}
	return false
}

// DistSegmentPolyline returns the minimum distance between segment s and the
// polyline through pts.
func DistSegmentPolyline(s Segment, pts []Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	if len(pts) == 1 {
		return DistPointSegment(pts[0], s)
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(pts); i++ {
		v := DistSegmentSegment(s, Segment{pts[i], pts[i+1]})
		if v < best {
			best = v
			//lint:ignore floatcmp exact zero is a sound early exit for a nonnegative distance; a missed ulp only skips the shortcut
			if best == 0 {
				return 0
			}
		}
	}
	return best
}
