// Package geo provides the planar geometry kernels used throughout TraSS:
// points, rectangles, segments, and the exact minimum-distance routines the
// pruning lemmas of the paper are built on.
//
// All coordinates are in the normalized index plane [0,1)². Callers that work
// in longitude/latitude should normalize first (see NormalizeLonLat).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the normalized plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector (represented as a Point).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Dist returns the Euclidean distance between p and q. Coordinates live in
// the unit square, so plain sqrt is safe (math.Hypot's overflow guards cost
// several times more and are never needed here).
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids the
// square root on hot paths; compare against squared thresholds.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

func (p Point) String() string { return fmt.Sprintf("(%.6f,%.6f)", p.X, p.Y) }

// Segment is the closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Rect is an axis-parallel rectangle. Min is the lower-left corner and Max the
// upper-right corner; Min.X <= Max.X and Min.Y <= Max.Y for a valid Rect.
// A Rect is treated as a closed region for distance purposes.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Extend/Union: a rect that
// contains nothing and yields the other operand when merged.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r is the empty rectangle (contains no points).
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r, or 0 for an empty rect.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies in the closed rectangle r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether the closed rectangles r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// ExtendPoint returns the smallest rect containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Buffer returns r extended by eps on every side. This is the paper's
// Ext(MBR, ε) operation (Definition 7).
func (r Rect) Buffer(eps float64) Rect {
	return Rect{
		Min: Point{r.Min.X - eps, r.Min.Y - eps},
		Max: Point{r.Max.X + eps, r.Max.Y + eps},
	}
}

// Edges returns the four edges of r in order bottom, right, top, left.
func (r Rect) Edges() [4]Segment {
	bl := r.Min
	br := Point{r.Max.X, r.Min.Y}
	tr := r.Max
	tl := Point{r.Min.X, r.Max.Y}
	return [4]Segment{{bl, br}, {br, tr}, {tr, tl}, {tl, bl}}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Min, r.Max)
}

// DistPointRect returns the minimum distance from p to the closed rect r
// (zero if p is inside r).
func DistPointRect(p Point, r Rect) float64 {
	dx := math.Max(math.Max(r.Min.X-p.X, 0), p.X-r.Max.X)
	dy := math.Max(math.Max(r.Min.Y-p.Y, 0), p.Y-r.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// DistRectRect returns the minimum distance between closed rects r and s
// (zero if they intersect).
func DistRectRect(r, s Rect) float64 {
	dx := math.Max(math.Max(r.Min.X-s.Max.X, 0), s.Min.X-r.Max.X)
	dy := math.Max(math.Max(r.Min.Y-s.Max.Y, 0), s.Min.Y-r.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// DistPointSegment returns the minimum distance from p to segment s.
func DistPointSegment(p Point, s Segment) float64 {
	return math.Sqrt(dist2PointSegment(p, s))
}

func dist2PointSegment(p Point, s Segment) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	//lint:ignore floatcmp exact zero is the degenerate-segment guard; only l2 == 0 makes the projection divide by zero, and tiny nonzero segments are fine
	if l2 == 0 {
		return p.Dist2(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := Point{s.A.X + t*d.X, s.A.Y + t*d.Y}
	return p.Dist2(proj)
}

// SegmentsIntersect reports whether segments s1 and s2 share at least one
// point (including touching endpoints and collinear overlap).
func SegmentsIntersect(s1, s2 Segment) bool {
	d1 := cross(s2.A, s2.B, s1.A)
	d2 := cross(s2.A, s2.B, s1.B)
	d3 := cross(s1.A, s1.B, s2.A)
	d4 := cross(s1.A, s1.B, s2.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	// Exact zero cross products are the standard collinear-case predicate of
	// the CCW intersection test; an epsilon here would misclassify near-misses
	// as touching.
	switch {
	//lint:ignore floatcmp exact zero is the collinearity predicate
	case d1 == 0 && onSegment(s2.A, s2.B, s1.A):
		return true
	//lint:ignore floatcmp exact zero is the collinearity predicate
	case d2 == 0 && onSegment(s2.A, s2.B, s1.B):
		return true
	//lint:ignore floatcmp exact zero is the collinearity predicate
	case d3 == 0 && onSegment(s1.A, s1.B, s2.A):
		return true
	//lint:ignore floatcmp exact zero is the collinearity predicate
	case d4 == 0 && onSegment(s1.A, s1.B, s2.B):
		return true
	}
	return false
}

// cross returns the z component of (b-a) × (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment assumes p is collinear with a-b and reports whether p lies within
// the segment's bounding box.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DistSegmentSegment returns the minimum distance between two segments
// (zero if they intersect).
func DistSegmentSegment(s1, s2 Segment) float64 {
	if SegmentsIntersect(s1, s2) {
		return 0
	}
	d := dist2PointSegment(s1.A, s2)
	if v := dist2PointSegment(s1.B, s2); v < d {
		d = v
	}
	if v := dist2PointSegment(s2.A, s1); v < d {
		d = v
	}
	if v := dist2PointSegment(s2.B, s1); v < d {
		d = v
	}
	return math.Sqrt(d)
}

// SegmentIntersectsRect reports whether segment s shares any point with the
// closed rect r.
func SegmentIntersectsRect(s Segment, r Rect) bool {
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	// The segment can only cross the rect by crossing one of its edges.
	for _, e := range r.Edges() {
		if SegmentsIntersect(s, e) {
			return true
		}
	}
	return false
}

// DistSegmentRect returns the minimum distance between segment s and the
// closed rect r (zero if they intersect).
func DistSegmentRect(s Segment, r Rect) float64 {
	if SegmentIntersectsRect(s, r) {
		return 0
	}
	d := math.Inf(1)
	for _, e := range r.Edges() {
		if v := DistSegmentSegment(s, e); v < d {
			d = v
		}
	}
	return d
}

// SegmentBounds returns the bounding rect of a segment. For an axis-parallel
// segment the bounds are the segment itself, so DistRectRect against them is
// the exact segment distance — the fast path every MBR-edge computation in
// the pruning lemmas uses.
func SegmentBounds(s Segment) Rect {
	return Rect{
		Min: Point{X: math.Min(s.A.X, s.B.X), Y: math.Min(s.A.Y, s.B.Y)},
		Max: Point{X: math.Max(s.A.X, s.B.X), Y: math.Max(s.A.Y, s.B.Y)},
	}
}

// MBRPoints returns the minimum bounding rectangle of pts. It panics if pts
// is empty: an MBR of nothing is a caller bug, not a recoverable state.
func MBRPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: MBRPoints of empty slice")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// World is the normalized index plane.
var World = Rect{Min: Point{0, 0}, Max: Point{1, 1}}

// NormalizeLonLat maps a longitude/latitude pair onto the normalized plane.
func NormalizeLonLat(lon, lat float64) Point {
	return Point{X: (lon + 180) / 360, Y: (lat + 90) / 180}
}

// DenormalizeLonLat is the inverse of NormalizeLonLat.
func DenormalizeLonLat(p Point) (lon, lat float64) {
	return p.X*360 - 180, p.Y*180 - 90
}

// Clamp01 clamps v into [0,1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
