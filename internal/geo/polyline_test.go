package geo

import (
	"math"
	"testing"
)

func TestPolylineIntersectsRect(t *testing.T) {
	r := Rect{Min: Point{X: 0.4, Y: 0.4}, Max: Point{X: 0.6, Y: 0.6}}
	tests := []struct {
		pts  []Point
		want bool
	}{
		{nil, false},
		{[]Point{{X: 0.5, Y: 0.5}}, true},                    // single point inside
		{[]Point{{X: 0.1, Y: 0.1}}, false},                   // single point outside
		{[]Point{{X: 0.1, Y: 0.5}, {X: 0.9, Y: 0.5}}, true},  // crosses through
		{[]Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, false}, // stays outside
		{[]Point{{X: 0.45, Y: 0.45}, {X: 0.55, Y: 0.5}}, true},
	}
	for i, tc := range tests {
		if got := PolylineIntersectsRect(tc.pts, r); got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestDistSegmentPolyline(t *testing.T) {
	poly := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	s := Segment{A: Point{X: 0.2, Y: 0.5}, B: Point{X: 0.8, Y: 0.5}}
	if got := DistSegmentPolyline(s, poly); !almostEq(got, 0.5) {
		t.Errorf("got %v, want 0.5", got)
	}
	crossing := Segment{A: Point{X: 0.5, Y: -1}, B: Point{X: 0.5, Y: 1}}
	if got := DistSegmentPolyline(crossing, poly); got != 0 {
		t.Errorf("crossing segment: %v", got)
	}
	if got := DistSegmentPolyline(s, []Point{{X: 0.5, Y: 1.5}}); !almostEq(got, 1) {
		t.Errorf("single-point polyline: %v", got)
	}
	if got := DistSegmentPolyline(s, nil); !math.IsInf(got, 1) {
		t.Errorf("empty polyline: %v", got)
	}
}

func TestDistRectPolylineDegenerate(t *testing.T) {
	r := Rect{Min: Point{X: 0, Y: 0}, Max: Point{X: 1, Y: 1}}
	if got := DistRectPolyline(r, nil); !math.IsInf(got, 1) {
		t.Errorf("empty polyline: %v", got)
	}
}

func TestExtendPoint(t *testing.T) {
	r := Rect{Min: Point{X: 0.4, Y: 0.4}, Max: Point{X: 0.6, Y: 0.6}}
	got := r.ExtendPoint(Point{X: 0.9, Y: 0.1})
	want := Rect{Min: Point{X: 0.4, Y: 0.1}, Max: Point{X: 0.9, Y: 0.6}}
	if got != want {
		t.Fatalf("ExtendPoint = %v, want %v", got, want)
	}
	// Point already inside: no change.
	if got := r.ExtendPoint(Point{X: 0.5, Y: 0.5}); got != r {
		t.Fatalf("inside point changed the rect: %v", got)
	}
}

func TestClamp01(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	} {
		if got := Clamp01(tc.in); got != tc.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := Point{X: 0.25, Y: 0.75}
	if p.String() == "" {
		t.Error("empty point string")
	}
	r := Rect{Min: p, Max: p}
	if r.String() == "" {
		t.Error("empty rect string")
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Segment{A: Point{X: 0.8, Y: 0.2}, B: Point{X: 0.3, Y: 0.9}}
	b := SegmentBounds(s)
	want := Rect{Min: Point{X: 0.3, Y: 0.2}, Max: Point{X: 0.8, Y: 0.9}}
	if b != want {
		t.Fatalf("SegmentBounds = %v, want %v", b, want)
	}
	// Axis-parallel segment: bounds are the segment; rect distance to the
	// bounds equals exact segment distance.
	h := Segment{A: Point{X: 0.2, Y: 0.5}, B: Point{X: 0.8, Y: 0.5}}
	target := Rect{Min: Point{X: 0.4, Y: 0.8}, Max: Point{X: 0.5, Y: 0.9}}
	exact := DistSegmentRect(h, target)
	viaBounds := DistRectRect(SegmentBounds(h), target)
	if !almostEq(exact, viaBounds) {
		t.Fatalf("axis-parallel fast path %v != exact %v", viaBounds, exact)
	}
}
