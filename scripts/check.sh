#!/usr/bin/env bash
# check.sh — the full verification gate, runnable locally and in CI.
#
#   build      go build ./...
#   vet        go vet ./...
#   lint       trasslint ./...   (project-specific analyzers, internal/lint)
#   torture    deterministic crash/error-injection suites (kv + cluster);
#              SHORT=1 runs the strided subset, otherwise every fault point
#   test       go test -race ./...   (plain go test ./... with SHORT=1)
#   fuzz       10s smoke run of every native fuzz target (skipped with SHORT=1)
#
# SHORT=1 trades the race detector, full fault-point enumeration, and fuzz
# smoke for speed; CI always runs the full gate.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step build
go build ./...

step vet
go vet ./...

step trasslint
go run ./cmd/trasslint ./...

# Crash-safety torture: enumerate fault points and crash/fail at each one.
# Deterministic (seeded workloads, FS-lock-ordered op numbering), so a
# failure always names a reproducible fault point.
if [[ "${SHORT:-0}" == "1" ]]; then
    step "crash torture (strided subset)"
    go test -short -count=1 -run 'Torture|TornTail' ./internal/kv ./internal/cluster
else
    step "crash torture (every fault point)"
    go test -count=1 -run 'Torture|TornTail' ./internal/kv ./internal/cluster
fi

if [[ "${SHORT:-0}" == "1" ]]; then
    step "test (short)"
    go test -short ./...
else
    step "test (race)"
    go test -race ./...

    step "fuzz smoke (10s per target)"
    # Enumerate fuzz targets package by package: go test allows only one
    # -fuzz pattern per run.
    for pkg in $(go list ./...); do
        dir=$(go list -f '{{.Dir}}' "$pkg")
        # `|| true`: most packages have no fuzz targets and grep exits
        # nonzero, which set -o pipefail would otherwise turn fatal.
        targets=$(grep -hEo 'func (Fuzz[A-Za-z0-9_]+)' "$dir"/*_test.go 2>/dev/null | awk '{print $2}' | sort -u || true)
        for t in $targets; do
            echo "-- $pkg $t"
            go test -run=NONE -fuzz="^${t}\$" -fuzztime=10s "$pkg"
        done
    done
fi

printf '\nAll checks passed.\n'
