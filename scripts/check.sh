#!/usr/bin/env bash
# check.sh — the full verification gate, runnable locally and in CI.
#
#   usage: check.sh [lint|torture|concurrency|test|all]     (default: all)
#
# The optional argument selects a step group, so CI can fan the gate out
# across parallel jobs while one local `./scripts/check.sh` still runs
# everything:
#
#   lint       go build ./..., go vet ./..., trasslint ./... (project-specific
#              analyzers, internal/lint: the syntactic checks, the flow-aware
#              durability/concurrency checks, and the interprocedural
#              suite — guardedby, atomicmix, golifetime, lockheldio,
#              lockorder, mustclose — built on call-graph summaries, plus
#              waiverhygiene policing the lint:ignore inventory), and an
#              explicit self-host pass over internal/lint, cmd/..., and
#              examples/... .
#              trasslint supports -only/-skip to bisect a finding to one
#              analyzer locally; the gate always runs all of them.
#   torture    deterministic crash/error-injection suites (kv + cluster);
#              SHORT=1 runs the strided subset, otherwise every fault point
#   concurrency  the concurrent-writer torture suites under -race: N writer
#              goroutines race group commits and background compactions while
#              faults fire at sampled points — crash, injected errors,
#              close-during-inflight, and WAL poison fan-out. Always -race
#              (the whole point is racing the committer and the compaction
#              supervisor); SHORT=1 samples fewer fault points
#   test       refinement-executor and streaming-pipeline race tests (always
#              under -race: the parallel refine pool and the bounded
#              scan-to-refine stream are the code most worth racing), then
#              go test -race ./... and a 10s fuzz smoke of every native fuzz
#              target (plain go test -short ./... and no fuzz with SHORT=1)
#   serve      end-to-end over a real socket: build trassd + trass, generate
#              and load a dataset, run the same queries embedded and against
#              the server, and require the wire output byte-identical (cmp);
#              streamed output must match as a set (sort | cmp). Finishes
#              with a SIGTERM drain that must exit 0.
#
# SHORT=1 trades the race detector, full fault-point enumeration, and fuzz
# smoke for speed; CI always runs the full gate. The lint step is NOT trimmed
# by SHORT=1 — it takes seconds and the whole point of a static gate is that
# it never gets skipped. (The lint package's own module-wide test does honor
# -short and skips there, because the lint binary run below covers it.)
#
# TRASSLINT_FORMAT selects trasslint's output format (text locally; CI sets
# github for inline PR annotations). trasslint prints a one-line timing
# summary (packages, findings, elapsed) to stderr and follows the exit-code
# contract 0 clean / 1 findings / 2 load error, so a load regression fails
# the gate just as loudly as a finding.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
case "$MODE" in
    lint|torture|concurrency|test|serve|all) ;;
    *) echo "check.sh: unknown step group '$MODE' (want lint, torture, concurrency, test, serve, or all)" >&2; exit 2 ;;
esac

step() { printf '\n== %s ==\n' "$*"; }

if [[ "$MODE" == "lint" || "$MODE" == "all" ]]; then
    step build
    go build ./...

    step vet
    go vet ./...

    step trasslint
    go run ./cmd/trasslint -format="${TRASSLINT_FORMAT:-text}" ./...

    # Self-hosting: the analyzers, the flow engine, and the driver are linted
    # like any other package, and so are every command and example — the
    # packages most likely to accumulate quick-and-dirty resource handling.
    # The ./... walk above already covers them; this explicit pass keeps the
    # guarantee visible and loud even if the walk ever learns to skip tool or
    # example packages.
    step "trasslint self-host (lint, cmds, examples)"
    go run ./cmd/trasslint -format="${TRASSLINT_FORMAT:-text}" ./internal/lint ./internal/lint/flow ./cmd/... ./examples/...
fi

if [[ "$MODE" == "torture" || "$MODE" == "all" ]]; then
    # Crash-safety torture: enumerate fault points and crash/fail at each one.
    # Deterministic (seeded workloads, FS-lock-ordered op numbering), so a
    # failure always names a reproducible fault point.
    # -skip Concurrent: the concurrent-writer suites belong to the
    # `concurrency` group, which always runs them under -race.
    if [[ "${SHORT:-0}" == "1" ]]; then
        step "crash torture (strided subset)"
        go test -short -count=1 -run 'Torture|TornTail' -skip 'Concurrent' ./internal/kv ./internal/cluster
    else
        step "crash torture (every fault point)"
        go test -count=1 -run 'Torture|TornTail' -skip 'Concurrent' ./internal/kv ./internal/cluster
    fi
fi

if [[ "$MODE" == "concurrency" || "$MODE" == "all" ]]; then
    # Concurrent-writer torture: writers race mid-group-commit and
    # mid-background-compaction while faults fire. Nondeterministic
    # interleavings by design, so fault points are sampled rather than
    # enumerated; the acked-writes oracle holds for any interleaving.
    # Always under -race — these suites exist to race the committer.
    if [[ "${SHORT:-0}" == "1" ]]; then
        step "concurrent torture (race, sampled subset)"
        go test -race -short -count=1 -run 'Concurrent|PoisonFanout|ManifestOrder|RetryAndDegraded' ./internal/kv ./internal/cluster
    else
        step "concurrent torture (race)"
        go test -race -count=1 -run 'Concurrent|PoisonFanout|ManifestOrder|RetryAndDegraded' ./internal/kv ./internal/cluster
    fi
fi

if [[ "$MODE" == "test" || "$MODE" == "all" ]]; then
    # The parallel refinement executor always runs under the race detector,
    # even with SHORT=1: its tests force worker pools > 1, so this is the
    # cheapest way to keep the executor's synchronization honest.
    step "refine executor (race)"
    go test -race -count=1 -run 'Refine' ./internal/query

    # The streaming scan pipeline spans three layers (cluster emit loop,
    # store range mapper, query refine executor); its suites force worker
    # pools, bounded queues, and mid-stream faults, so they too always run
    # under the race detector.
    step "stream pipeline (race)"
    go test -race -count=1 -run 'Stream' ./internal/cluster ./internal/store ./internal/query

    if [[ "${SHORT:-0}" == "1" ]]; then
        step "test (short)"
        go test -short ./...
    else
        step "test (race)"
        go test -race ./...

        step "fuzz smoke (10s per target)"
        # Enumerate fuzz targets package by package: go test allows only one
        # -fuzz pattern per run.
        for pkg in $(go list ./...); do
            dir=$(go list -f '{{.Dir}}' "$pkg")
            # `|| true`: most packages have no fuzz targets and grep exits
            # nonzero, which set -o pipefail would otherwise turn fatal.
            targets=$(grep -hEo 'func (Fuzz[A-Za-z0-9_]+)' "$dir"/*_test.go 2>/dev/null | awk '{print $2}' | sort -u || true)
            for t in $targets; do
                echo "-- $pkg $t"
                go test -run=NONE -fuzz="^${t}\$" -fuzztime=10s "$pkg"
            done
        done
    fi
fi

if [[ "$MODE" == "serve" || "$MODE" == "all" ]]; then
    # Served-vs-embedded equivalence over a real socket. The non-streaming
    # wire path uses the same deterministic result ordering as the embedded
    # CLI, so the outputs must be byte-identical; streamed delivery order is
    # the refine pipeline's, so the streamed check compares the sorted sets.
    step "serve e2e (build)"
    SERVE_TMP=$(mktemp -d)
    TRASSD_PID=""
    serve_cleanup() {
        if [[ -n "$TRASSD_PID" ]] && kill -0 "$TRASSD_PID" 2>/dev/null; then
            kill -KILL "$TRASSD_PID" 2>/dev/null || true
        fi
        rm -rf "$SERVE_TMP"
    }
    trap serve_cleanup EXIT
    go build -o "$SERVE_TMP/trassd" ./cmd/trassd
    go build -o "$SERVE_TMP/trass" ./cmd/trass

    step "serve e2e (dataset + embedded baseline)"
    "$SERVE_TMP/trass" gen -kind tdrive -n 2000 -seed 7 -out "$SERVE_TMP/data.txt"
    "$SERVE_TMP/trass" load -db "$SERVE_TMP/db" -in "$SERVE_TMP/data.txt"
    # Embedded runs happen before trassd opens the store.
    "$SERVE_TMP/trass" query -db "$SERVE_TMP/db" -id td000042 -eps 0.2deg 2>/dev/null > "$SERVE_TMP/embedded-threshold.txt"
    "$SERVE_TMP/trass" query -db "$SERVE_TMP/db" -id td000042 -k 20 2>/dev/null > "$SERVE_TMP/embedded-topk.txt"

    step "serve e2e (trassd round trip)"
    "$SERVE_TMP/trassd" -db "$SERVE_TMP/db" -addr 127.0.0.1:0 -addr-file "$SERVE_TMP/addr" &
    TRASSD_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SERVE_TMP/addr" ]] && break
        if ! kill -0 "$TRASSD_PID" 2>/dev/null; then
            echo "serve e2e: trassd exited before listening" >&2; exit 1
        fi
        sleep 0.1
    done
    [[ -s "$SERVE_TMP/addr" ]] || { echo "serve e2e: trassd never wrote its address" >&2; exit 1; }
    ADDR=$(cat "$SERVE_TMP/addr")

    "$SERVE_TMP/trass" query -server "$ADDR" -id td000042 -eps 0.2deg 2>/dev/null > "$SERVE_TMP/wire-threshold.txt"
    "$SERVE_TMP/trass" query -server "$ADDR" -id td000042 -k 20 2>/dev/null > "$SERVE_TMP/wire-topk.txt"
    cmp "$SERVE_TMP/embedded-threshold.txt" "$SERVE_TMP/wire-threshold.txt"
    cmp "$SERVE_TMP/embedded-topk.txt" "$SERVE_TMP/wire-topk.txt"

    "$SERVE_TMP/trass" query -server "$ADDR" -stream -id td000042 -eps 0.2deg 2>/dev/null > "$SERVE_TMP/stream-threshold.txt"
    sort "$SERVE_TMP/embedded-threshold.txt" > "$SERVE_TMP/embedded-threshold.sorted"
    sort "$SERVE_TMP/stream-threshold.txt" > "$SERVE_TMP/stream-threshold.sorted"
    cmp "$SERVE_TMP/embedded-threshold.sorted" "$SERVE_TMP/stream-threshold.sorted"

    step "serve e2e (SIGTERM drain)"
    kill -TERM "$TRASSD_PID"
    if ! wait "$TRASSD_PID"; then
        echo "serve e2e: trassd did not drain cleanly on SIGTERM" >&2; exit 1
    fi
    TRASSD_PID=""
    serve_cleanup
    trap - EXIT
fi

printf '\nAll checks passed (%s).\n' "$MODE"
