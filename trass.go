// Package trass is an embedded trajectory similarity search engine — a Go
// reproduction of "TraSS: Efficient Trajectory Similarity Search Based on
// Key-Value Data Stores" (ICDE 2022).
//
// Trajectories are stored in an HBase-style, range-partitioned key-value
// substrate under XZ* index keys: a fine-grained static spatial index whose
// enlarged elements and position codes capture both the size and the shape
// of each trajectory. Queries run in two pruning stages before any exact
// similarity computation: global pruning converts the query into a handful
// of key-range scans, and local filtering — pushed down into the region
// servers like an HBase coprocessor — rejects candidates using pre-computed
// Douglas-Peucker features.
//
// Basic use:
//
//	db, err := trass.Open("/data/taxis", trass.WithShards(8))
//	...
//	db.Put(trass.NewTrajectory("cab-42", points))
//	matches, err := db.ThresholdSearch(query, 0.005)
//	nearest, err := db.TopKSearch(query, 50)
//
// Coordinates live on the normalized plane [0,1)². Use NormalizeLonLat for
// longitude/latitude data. Three similarity measures are supported: discrete
// Fréchet (default), Hausdorff, and DTW.
package trass

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/geo"
	"repro/internal/kv"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/traj"
)

// ErrNotFound is returned by Get for an unknown trajectory id.
var ErrNotFound = kv.ErrNotFound

// Measure selects the trajectory similarity measure.
type Measure = dist.Measure

// Supported measures.
const (
	Frechet   = dist.Frechet
	Hausdorff = dist.Hausdorff
	DTW       = dist.DTW
)

// Point is a location on the normalized plane [0,1)².
type Point = geo.Point

// Trajectory is an identified point sequence.
type Trajectory = traj.Trajectory

// NewTrajectory builds a trajectory from an id and points (copied). It
// panics on an empty point slice.
func NewTrajectory(id string, pts []Point) *Trajectory { return traj.New(id, pts) }

// NewTimedTrajectory is NewTrajectory with per-point Unix-seconds timestamps
// (one per point, copied). Timestamps never affect indexing; they feed the
// time-window query variants.
func NewTimedTrajectory(id string, pts []Point, times []int64) *Trajectory {
	return traj.NewTimed(id, pts, times)
}

// TimeWindow restricts a query to trajectories observed within
// [Start, End] Unix seconds (inclusive); zero leaves a side unbounded.
// Untimed trajectories match every window.
type TimeWindow = query.TimeWindow

// NormalizeLonLat maps longitude/latitude onto the normalized plane.
func NormalizeLonLat(lon, lat float64) Point { return geo.NormalizeLonLat(lon, lat) }

// DenormalizeLonLat is the inverse of NormalizeLonLat.
func DenormalizeLonLat(p Point) (lon, lat float64) { return geo.DenormalizeLonLat(p) }

// Match is one query result.
type Match struct {
	ID       string
	Distance float64
	Points   []Point
}

// QueryStats reports what one query did: planning, scanning and refinement
// times plus the candidate counts the TraSS paper's evaluation tracks.
type QueryStats = query.Stats

// Option configures Open.
type Option func(*store.Config, *config)

type config struct {
	measure           Measure
	refineParallelism int
	streamBatch       int
	streamQueueDepth  int
}

// WithShards sets the row-key hash fan-out (default 8, the paper's value).
func WithShards(n int) Option {
	return func(sc *store.Config, _ *config) { sc.Shards = n }
}

// WithMaxResolution sets the XZ* maximum resolution (default 16).
func WithMaxResolution(r int) Option {
	return func(sc *store.Config, _ *config) { sc.MaxResolution = r }
}

// WithDPTolerance sets the Douglas-Peucker feature tolerance in normalized
// plane units (default 0.01, the paper's value in its own units).
func WithDPTolerance(theta float64) Option {
	return func(sc *store.Config, _ *config) { sc.DPTolerance = theta }
}

// WithMeasure selects the similarity measure (default Fréchet).
func WithMeasure(m Measure) Option {
	return func(_ *store.Config, c *config) { c.measure = m }
}

// WithParallelism bounds concurrent region scans per query (default: one per
// region). It governs the storage stage only; the client-side refinement
// stage that follows is bounded by WithRefineParallelism.
func WithParallelism(n int) Option {
	return func(sc *store.Config, _ *config) { sc.Parallelism = n }
}

// WithRefineParallelism bounds the refinement worker pool per query — the
// client-side stage that decodes shipped candidates and runs the full
// similarity measure over each one, typically the dominant cost of a search.
// Default: the WithParallelism value, else GOMAXPROCS. Results are identical
// for any value (the executor merges deterministically); only wall-clock
// changes. QueryStats.RefineWorkers reports the pool size a query used.
func WithRefineParallelism(n int) Option {
	return func(_ *store.Config, c *config) { c.refineParallelism = n }
}

// WithStreamBatch sets how many rows each region scan batches before handing
// them to the query pipeline (default 64). Queries stream candidates from
// the region scans straight into refinement; smaller batches shorten the
// time to the first refined candidate, larger ones amortize hand-off
// overhead. Results are identical for any value.
func WithStreamBatch(rows int) Option {
	return func(_ *store.Config, c *config) { c.streamBatch = rows }
}

// WithStreamQueueDepth bounds how many candidate rows may be in flight
// between the storage scans and refinement — queued, being refined, or
// awaiting their in-order merge (default: a small multiple of the refine
// worker count). This is the query pipeline's memory bound and its
// backpressure knob: when refinement falls behind, a full queue blocks the
// region scans rather than buffering the backlog. Results are identical for
// any depth; QueryStats.StreamPeakDepth reports the high-water mark a query
// actually reached.
func WithStreamQueueDepth(n int) Option {
	return func(_ *store.Config, c *config) { c.streamQueueDepth = n }
}

// WithSyncWrites makes every acknowledged write durable before Put returns
// (WAL fsync per write). Slower, but a crash — even a power loss — loses
// nothing that was acknowledged. Without it, durability is at flush
// granularity.
func WithSyncWrites() Option {
	return func(sc *store.Config, _ *config) { sc.SyncWrites = true }
}

// WithDegradedScans lets queries degrade instead of fail when part of the
// storage layer is unavailable: rows from regions that fail even after
// retries are omitted, and QueryStats.PartialErrors reports how many regions
// are missing from the (sound but possibly incomplete) answer.
func WithDegradedScans() Option {
	return func(sc *store.Config, _ *config) { sc.DegradedScans = true }
}

// WithCompactionBackoff bounds the capped exponential backoff each region's
// background compactor applies when a compaction fails with a transient
// error: retries start at base and double up to max. Zero values keep the
// storage defaults (10ms base, 1s cap). When retries run out — or the error
// is permanent — the store keeps serving reads and writes and reports the
// condition via StorageStats().KV.CompactDegraded instead of wedging writers.
func WithCompactionBackoff(base, max time.Duration) Option {
	return func(sc *store.Config, _ *config) {
		sc.CompactRetryBase = base
		sc.CompactRetryMax = max
	}
}

// DB is an open trajectory store with its query engine.
type DB struct {
	store  *store.Store
	engine *query.Engine
}

// Open creates or opens a TraSS database rooted at dir.
func Open(dir string, opts ...Option) (*DB, error) {
	sc := store.Config{Dir: dir}
	c := config{measure: Frechet}
	for _, o := range opts {
		o(&sc, &c)
	}
	st, err := store.Open(sc)
	if err != nil {
		return nil, err
	}
	eng := query.New(st, c.measure)
	eng.SetRefineParallelism(c.refineParallelism)
	eng.SetStreamBatch(c.streamBatch)
	eng.SetStreamQueueDepth(c.streamQueueDepth)
	return &DB{store: st, engine: eng}, nil
}

// Put indexes and stores one trajectory.
func (db *DB) Put(t *Trajectory) error { return db.store.Put(t) }

// PutBatch stores many trajectories.
func (db *DB) PutBatch(ts []*Trajectory) error { return db.store.PutBatch(ts) }

// Flush persists in-memory data to disk.
func (db *DB) Flush() error { return db.store.Flush() }

// Compact merges each region's files and drops shadowed versions.
func (db *DB) Compact() error { return db.store.Compact() }

// Count returns the number of stored trajectories.
func (db *DB) Count() int64 { return db.store.Count() }

// StorageStats aggregates the storage layer's counters across every region:
// write and read volumes, flush/compaction activity, group-commit and WAL
// fsync counts, scan RPCs and retries. KV.CompactDegraded reports whether any
// region's background compaction is failing — the store keeps serving reads
// and writes in that state, but merges are behind; see WithCompactionBackoff.
// The MVCC gauges (KV.PinnedSnapshots, KV.FrozenMemtables, KV.ObsoleteTables)
// report current snapshot-read state: every query pins one snapshot for its
// lifetime, so a pinned count that never drops — with an obsolete-table
// backlog that never drains — points at a leaked reader.
type StorageStats = cluster.Stats

// StorageStats returns a snapshot of the storage layer's health and activity
// counters, or an error on a closed database.
func (db *DB) StorageStats() (StorageStats, error) {
	return db.store.Cluster().Stats()
}

// Get fetches one stored trajectory by id, or ErrNotFound.
func (db *DB) Get(id string) (*Trajectory, error) {
	rec, err := db.store.GetByID(id)
	if err != nil {
		return nil, err
	}
	return &Trajectory{ID: rec.ID, Points: rec.Points}, nil
}

// ThresholdSearch returns every stored trajectory within eps of q under the
// database's measure (Definition 3 of the paper).
func (db *DB) ThresholdSearch(q *Trajectory, eps float64) ([]Match, error) {
	ms, _, err := db.ThresholdSearchStats(q, eps)
	return ms, err
}

// ThresholdSearchStats is ThresholdSearch plus per-query statistics.
func (db *DB) ThresholdSearchStats(q *Trajectory, eps float64) ([]Match, *QueryStats, error) {
	return db.ThresholdSearchContext(context.Background(), q, eps)
}

// ThresholdSearchContext is ThresholdSearchStats under a context:
// cancellation aborts the storage scans and surfaces ctx's error.
func (db *DB) ThresholdSearchContext(ctx context.Context, q *Trajectory, eps float64) ([]Match, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("trass: negative threshold %v", eps)
	}
	rs, stats, err := db.engine.ThresholdContext(ctx, q, eps)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// ThresholdSearchFunc is ThresholdSearch with streaming delivery: each match
// is passed to fn as refinement produces it, so memory stays bounded by the
// stream queue depth no matter how many trajectories match. Delivery order
// is unspecified (it follows refinement completion, not key order). A
// non-nil error from fn aborts the search and is returned as-is.
func (db *DB) ThresholdSearchFunc(ctx context.Context, q *Trajectory, eps float64, fn func(Match) error) (*QueryStats, error) {
	if eps < 0 {
		return nil, fmt.Errorf("trass: negative threshold %v", eps)
	}
	return db.engine.ThresholdFunc(ctx, q, eps, func(r query.Result) error {
		return fn(Match{ID: r.ID, Distance: r.Distance, Points: r.Points})
	})
}

// RangeSearchFunc is RangeSearch with streaming delivery; see
// ThresholdSearchFunc for the contract. Matches carry no distance.
func (db *DB) RangeSearchFunc(ctx context.Context, window Rect, fn func(Match) error) (*QueryStats, error) {
	return db.engine.RangeFunc(ctx, window, func(r query.Result) error {
		return fn(Match{ID: r.ID, Distance: r.Distance, Points: r.Points})
	})
}

// TopKSearch returns the k stored trajectories nearest to q, ascending by
// distance (Definition 4 of the paper).
func (db *DB) TopKSearch(q *Trajectory, k int) ([]Match, error) {
	ms, _, err := db.TopKSearchStats(q, k)
	return ms, err
}

// TopKSearchStats is TopKSearch plus per-query statistics.
func (db *DB) TopKSearchStats(q *Trajectory, k int) ([]Match, *QueryStats, error) {
	return db.TopKSearchContext(context.Background(), q, k)
}

// TopKSearchContext is TopKSearchStats under a context: cancellation aborts
// the storage scans and surfaces ctx's error.
func (db *DB) TopKSearchContext(ctx context.Context, q *Trajectory, k int) ([]Match, *QueryStats, error) {
	rs, stats, err := db.engine.TopKContext(ctx, q, k)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// Rect is an axis-parallel window on the normalized plane.
type Rect = geo.Rect

// RangeSearch returns every stored trajectory with at least one point inside
// window (the spatial range query the paper's conclusion mentions XZ* also
// supports). Matches carry no distance.
func (db *DB) RangeSearch(window Rect) ([]Match, error) {
	rs, _, err := db.engine.Range(window)
	if err != nil {
		return nil, err
	}
	return toMatches(rs), nil
}

// RangeSearchContext is RangeSearch under a context, plus per-query
// statistics: cancellation aborts the storage scans and surfaces ctx's error.
func (db *DB) RangeSearchContext(ctx context.Context, window Rect) ([]Match, *QueryStats, error) {
	rs, stats, err := db.engine.RangeContext(ctx, window)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// ThresholdSearchWindow is ThresholdSearch restricted to trajectories
// observed within the time window.
func (db *DB) ThresholdSearchWindow(q *Trajectory, eps float64, w TimeWindow) ([]Match, error) {
	if eps < 0 {
		return nil, fmt.Errorf("trass: negative threshold %v", eps)
	}
	rs, _, err := db.engine.ThresholdWindow(q, eps, w)
	if err != nil {
		return nil, err
	}
	return toMatches(rs), nil
}

// ThresholdSearchWindowContext is ThresholdSearchWindow under a context,
// plus per-query statistics. The serving layer (cmd/trassd) maps per-request
// deadlines and client disconnects onto queries through these variants.
func (db *DB) ThresholdSearchWindowContext(ctx context.Context, q *Trajectory, eps float64, w TimeWindow) ([]Match, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("trass: negative threshold %v", eps)
	}
	rs, stats, err := db.engine.ThresholdWindowContext(ctx, q, eps, w)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// ThresholdSearchWindowFunc is ThresholdSearchFunc restricted to the time
// window; see ThresholdSearchFunc for the streaming contract.
func (db *DB) ThresholdSearchWindowFunc(ctx context.Context, q *Trajectory, eps float64, w TimeWindow, fn func(Match) error) (*QueryStats, error) {
	if eps < 0 {
		return nil, fmt.Errorf("trass: negative threshold %v", eps)
	}
	return db.engine.ThresholdWindowFunc(ctx, q, eps, w, func(r query.Result) error {
		return fn(Match{ID: r.ID, Distance: r.Distance, Points: r.Points})
	})
}

// TopKSearchWindow returns the k nearest trajectories among those observed
// within the time window.
func (db *DB) TopKSearchWindow(q *Trajectory, k int, w TimeWindow) ([]Match, error) {
	rs, _, err := db.engine.TopKWindow(q, k, w)
	if err != nil {
		return nil, err
	}
	return toMatches(rs), nil
}

// TopKSearchWindowContext is TopKSearchWindow under a context, plus
// per-query statistics.
func (db *DB) TopKSearchWindowContext(ctx context.Context, q *Trajectory, k int, w TimeWindow) ([]Match, *QueryStats, error) {
	rs, stats, err := db.engine.TopKWindowContext(ctx, q, k, w)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// RangeSearchWindow is RangeSearch restricted to trajectories observed
// within the time window.
func (db *DB) RangeSearchWindow(window Rect, w TimeWindow) ([]Match, error) {
	rs, _, err := db.engine.RangeWindow(window, w)
	if err != nil {
		return nil, err
	}
	return toMatches(rs), nil
}

// RangeSearchWindowContext is RangeSearchWindow under a context, plus
// per-query statistics.
func (db *DB) RangeSearchWindowContext(ctx context.Context, window Rect, w TimeWindow) ([]Match, *QueryStats, error) {
	rs, stats, err := db.engine.RangeWindowContext(ctx, window, w)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

// RangeSearchWindowFunc is RangeSearchFunc restricted to the time window;
// see ThresholdSearchFunc for the streaming contract.
func (db *DB) RangeSearchWindowFunc(ctx context.Context, window Rect, w TimeWindow, fn func(Match) error) (*QueryStats, error) {
	return db.engine.RangeWindowFunc(ctx, window, w, func(r query.Result) error {
		return fn(Match{ID: r.ID, Distance: r.Distance, Points: r.Points})
	})
}

// NearestSearch returns the k stored trajectories whose closest approach to
// point p is smallest, ascending by that distance.
func (db *DB) NearestSearch(p Point, k int) ([]Match, error) {
	rs, _, err := db.engine.NearestToPoint(p, k)
	if err != nil {
		return nil, err
	}
	return toMatches(rs), nil
}

// NearestSearchContext is NearestSearch under a context, plus per-query
// statistics: cancellation aborts the storage scans and surfaces ctx's error.
func (db *DB) NearestSearchContext(ctx context.Context, p Point, k int) ([]Match, *QueryStats, error) {
	rs, stats, err := db.engine.NearestToPointContext(ctx, p, k)
	if err != nil {
		return nil, nil, err
	}
	return toMatches(rs), stats, nil
}

func toMatches(rs []query.Result) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = Match{ID: r.ID, Distance: r.Distance, Points: r.Points}
	}
	return out
}

// Verify checks the integrity (block checksums) of every on-disk file.
func (db *DB) Verify() error { return db.store.Verify() }

// Close shuts the database down.
func (db *DB) Close() error { return db.store.Close() }
