package trass_test

// One testing.B benchmark per evaluation figure. Each iteration regenerates
// the figure end to end on a reduced workload; run cmd/trassbench for
// paper-scale tables. `go test -bench=Fig -benchtime=1x` touches every
// figure once.

import (
	"io"
	"os"
	"testing"

	trass "repro"
	"repro/internal/bench"
	"repro/internal/gen"
)

func benchDataset() []*trass.Trajectory {
	return gen.TDrive(gen.TDriveOptions{Seed: 5, N: 5000})
}

func benchmarkFigure(b *testing.B, name string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "fig-*")
		if err != nil {
			b.Fatal(err)
		}
		cfg := bench.Config{Dir: dir, TDriveN: 1000, LorryN: 1000, Queries: 4, Seed: 1}
		if err := bench.Run(name, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ThresholdSearch(b *testing.B) { benchmarkFigure(b, "fig9") }
func BenchmarkFig10TopK(b *testing.B)           { benchmarkFigure(b, "fig10") }
func BenchmarkFig11Pruning(b *testing.B)        { benchmarkFigure(b, "fig11") }
func BenchmarkFig12Distribution(b *testing.B)   { benchmarkFigure(b, "fig12") }
func BenchmarkFig13Indexing(b *testing.B)       { benchmarkFigure(b, "fig13") }
func BenchmarkFig14Resolution(b *testing.B)     { benchmarkFigure(b, "fig14") }
func BenchmarkFig17Scalability(b *testing.B)    { benchmarkFigure(b, "fig17") }
func BenchmarkFig18TailLatency(b *testing.B)    { benchmarkFigure(b, "fig18") }
func BenchmarkFig19Shards(b *testing.B)         { benchmarkFigure(b, "fig19") }
func BenchmarkFig20OtherMeasures(b *testing.B)  { benchmarkFigure(b, "fig20") }
func BenchmarkIOReduction(b *testing.B)         { benchmarkFigure(b, "io") }
func BenchmarkAblation(b *testing.B)            { benchmarkFigure(b, "ablation") }

// Micro-benchmarks of the public API's two query paths on a mid-sized store.

func newBenchDB(b *testing.B) (*trass.DB, []*trass.Trajectory) {
	b.Helper()
	db, err := trass.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	data := benchDataset()
	if err := db.PutBatch(data); err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db, data
}

func BenchmarkThresholdSearch(b *testing.B) {
	db, data := newBenchDB(b)
	q := data[123]
	eps := 0.01 / 360
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ThresholdSearch(q, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKSearch(b *testing.B) {
	db, data := newBenchDB(b)
	q := data[123]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.TopKSearch(q, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	db, err := trass.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	data := benchDataset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := data[i%len(data)]
		if err := db.Put(t); err != nil {
			b.Fatal(err)
		}
	}
}
