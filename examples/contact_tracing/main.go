// Contact tracing: the paper's introductory use case. Given the trajectory
// of an infectious patient, find everyone whose trajectory stayed uniformly
// close to it — a threshold similarity search under the Fréchet distance,
// which (unlike a plain range query) requires the *whole* movement to match,
// not just a brush past one shared location. The search is then narrowed to
// the infectious period with a time window.
//
//	go run ./examples/contact_tracing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	trass "repro"
	"repro/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "trass-contacts-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore vfsseam example scaffolding: demos remove their own temp dir; not a persistence path under fault injection
	defer os.RemoveAll(dir)

	db, err := trass.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A city of 5,000 people moving around.
	population := gen.TDrive(gen.TDriveOptions{Seed: 7, N: 5000})
	if err := db.PutBatch(population); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// The patient: one of the stored trajectories. Plant three true close
	// contacts — people who moved along with the patient within ~100 m.
	patient := population[1234]
	rng := rand.New(rand.NewSource(99))
	closeness := 0.001 / 360 // ~0.001 degrees ≈ 100 m
	const daySecs = int64(86400)
	for i := 0; i < 3; i++ {
		pts := make([]trass.Point, len(patient.Points))
		times := make([]int64, len(patient.Points))
		for j, p := range patient.Points {
			pts[j] = trass.Point{
				X: p.X + (rng.Float64()-0.5)*closeness,
				Y: p.Y + (rng.Float64()-0.5)*closeness,
			}
			// contact-0 moved with the patient during the infectious period
			// (day 4); the others were earlier.
			times[j] = int64(i*2)*daySecs + 10*int64(j)
			if i == 0 {
				times[j] += 4 * daySecs
			}
		}
		contact := trass.NewTimedTrajectory(fmt.Sprintf("contact-%d", i), pts, times)
		if err := db.Put(contact); err != nil {
			log.Fatal(err)
		}
	}

	// Anyone within 0.002 degrees (~200 m) of the patient's whole path.
	eps := 0.002 / 360
	matches, stats, err := db.ThresholdSearchStats(patient, eps)
	if err != nil {
		log.Fatal(err)
	}

	// Narrowed to the infectious period: same search, but only trajectories
	// observed during those days qualify (the untimed background population
	// conservatively matches any window).
	infectious := trass.TimeWindow{Start: 3 * daySecs, End: 5 * daySecs}
	inPeriod, err := db.ThresholdSearchWindow(patient, eps, infectious)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("patient %s: %d potential close contacts\n", patient.ID, len(matches)-1)
	for _, m := range matches {
		if m.ID == patient.ID {
			continue
		}
		fmt.Printf("  %-12s  max separation %.1f m (approx)\n", m.ID, m.Distance*360*111_000)
	}
	fmt.Printf("\nsearch touched %d of %d stored trajectories (%.2f%%), shipped %d candidates\n",
		stats.RowsScanned, db.Count(),
		100*float64(stats.RowsScanned)/float64(db.Count()), stats.Retrieved)

	fmt.Printf("\nduring the infectious period (days 3-5) only:\n")
	for _, m := range inPeriod {
		if m.ID != patient.ID {
			fmt.Printf("  %s\n", m.ID)
		}
	}
}
