// Quickstart: open a TraSS store, load a few trajectories, and run both
// query types against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	trass "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "trass-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore vfsseam example scaffolding: demos remove their own temp dir; not a persistence path under fault injection
	defer os.RemoveAll(dir)

	db, err := trass.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Three small trajectories in longitude/latitude, normalized onto the
	// index plane. Two commute along the same road; one is elsewhere.
	commute1 := trass.NewTrajectory("commute-1", lonLatPath(
		116.30, 39.90, 116.31, 39.905, 116.32, 39.91, 116.33, 39.915))
	commute2 := trass.NewTrajectory("commute-2", lonLatPath(
		116.301, 39.9005, 116.311, 39.9052, 116.321, 39.9101, 116.331, 39.9154))
	elsewhere := trass.NewTrajectory("elsewhere", lonLatPath(
		116.50, 39.80, 116.51, 39.80, 116.52, 39.81, 116.53, 39.81))

	if err := db.PutBatch([]*trass.Trajectory{commute1, commute2, elsewhere}); err != nil {
		log.Fatal(err)
	}

	// Threshold search: everything within ~0.005 degrees of commute-1.
	eps := 0.005 / 360 // degrees → normalized plane units
	matches, err := db.ThresholdSearch(commute1, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("threshold search around commute-1:")
	for _, m := range matches {
		fmt.Printf("  %-10s  distance %.6f\n", m.ID, m.Distance)
	}

	// Top-k search: the two nearest trajectories to commute-2.
	top, err := db.TopKSearch(commute2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 nearest to commute-2:")
	for i, m := range top {
		fmt.Printf("  #%d %-10s  distance %.6f\n", i+1, m.ID, m.Distance)
	}
}

// lonLatPath builds normalized points from alternating lon/lat values.
func lonLatPath(coords ...float64) []trass.Point {
	pts := make([]trass.Point, len(coords)/2)
	for i := range pts {
		pts[i] = trass.NormalizeLonLat(coords[2*i], coords[2*i+1])
	}
	return pts
}
