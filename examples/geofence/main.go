// Geofence audit: the spatial range query XZ* also supports (mentioned in
// the paper's conclusion). A logistics operator checks which vehicle routes
// entered a restricted zone — a rectangle on the map — without scanning the
// whole fleet's history.
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"log"
	"os"

	trass "repro"
	"repro/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "trass-geofence-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore vfsseam example scaffolding: demos remove their own temp dir; not a persistence path under fault injection
	defer os.RemoveAll(dir)

	db, err := trass.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	routes := gen.Lorry(gen.LorryOptions{Seed: 33, N: 10000})
	if err := db.PutBatch(routes); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// Restricted zone: a box around one of the logistics hubs. Derive it
	// from a stored route so the demo always has hits.
	anchor := routes[4321].Points[0]
	zone := trass.Rect{
		Min: trass.Point{X: anchor.X - 0.002, Y: anchor.Y - 0.002},
		Max: trass.Point{X: anchor.X + 0.002, Y: anchor.Y + 0.002},
	}

	matches, err := db.RangeSearch(zone)
	if err != nil {
		log.Fatal(err)
	}
	lonMin, latMin := trass.DenormalizeLonLat(zone.Min)
	lonMax, latMax := trass.DenormalizeLonLat(zone.Max)
	fmt.Printf("restricted zone lon [%.3f, %.3f] lat [%.3f, %.3f]\n",
		lonMin, lonMax, latMin, latMax)
	fmt.Printf("%d of %d routes entered the zone\n", len(matches), db.Count())
	for i, m := range matches {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(matches)-10)
			break
		}
		fmt.Printf("  %s (%d points)\n", m.ID, len(m.Points))
	}
}
