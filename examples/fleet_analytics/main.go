// Fleet analytics: country-scale logistics (the paper's Lorry workload).
// Shows the measure extensions of Section VII — the same store queried under
// Fréchet, Hausdorff and DTW — and the per-query statistics a fleet operator
// would watch (rows scanned vs candidates vs answers).
//
//	go run ./examples/fleet_analytics
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	trass "repro"
	"repro/internal/gen"
)

func main() {
	base, err := os.MkdirTemp("", "trass-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore vfsseam example scaffolding: demos remove their own temp dir; not a persistence path under fault injection
	defer os.RemoveAll(base)

	// One dataset of 20,000 lorry routes, loaded once per measure (a store
	// is bound to one measure at open time).
	routes := gen.Lorry(gen.LorryOptions{Seed: 21, N: 20000})
	query := routes[777]
	eps := gen.DegreesToNorm(0.05)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	_, _ = fmt.Fprintln(w, "measure\tthreshold\tmatches\trows scanned\tcandidates\tprecision\tquery time")
	for _, m := range []trass.Measure{trass.Frechet, trass.Hausdorff, trass.DTW} {
		dir := fmt.Sprintf("%s/%s", base, m)
		db, err := trass.Open(dir, trass.WithMeasure(m))
		if err != nil {
			log.Fatal(err)
		}
		if err := db.PutBatch(routes); err != nil {
			log.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}

		e := eps
		if m == trass.DTW {
			e *= 50 // DTW sums distances over points; rescale the threshold
		}
		matches, stats, err := db.ThresholdSearchStats(query, e)
		if err != nil {
			log.Fatal(err)
		}
		_, _ = fmt.Fprintf(w, "%s\t%.6f\t%d\t%d\t%d\t%.3f\t%v\n",
			m, e, len(matches), stats.RowsScanned, stats.Retrieved,
			stats.Precision(), (stats.PruneTime + stats.ScanTime + stats.RefineTime).Round(1000))

		// Fleet duty: the 5 routes most similar to a reference route, for
		// consolidation candidates.
		if m == trass.Frechet {
			top, err := db.TopKSearch(query, 6)
			if err != nil {
				log.Fatal(err)
			}
			_, _ = fmt.Fprintf(w, "\t→ consolidation candidates:\t")
			for _, t := range top {
				if t.ID != query.ID {
					_, _ = fmt.Fprintf(w, "%s ", t.ID)
				}
			}
			_, _ = fmt.Fprintln(w)
		}
		if err := db.Close(); err != nil {
			log.Fatal(err)
		}
	}
	// tabwriter defers all output (and any write error) to Flush.
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
