// Carpool matching: the paper's second motivating use case. For each
// commuter, a top-k similarity search finds the neighbours with the most
// similar daily routes; mutually-near routes form carpool groups. This
// exercises the best-first top-k path (Algorithm 4) rather than the
// threshold path.
//
//	go run ./examples/carpool
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	trass "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "trass-carpool-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore vfsseam example scaffolding: demos remove their own temp dir; not a persistence path under fault injection
	defer os.RemoveAll(dir)

	db, err := trass.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Build commuter routes: 8 corridors through the city, each shared by a
	// handful of commuters with small personal detours, plus scattered
	// drivers who match nobody.
	rng := rand.New(rand.NewSource(11))
	var all []*trass.Trajectory
	for corridor := 0; corridor < 8; corridor++ {
		base := randomRoute(rng)
		for p := 0; p < 4+rng.Intn(4); p++ {
			id := fmt.Sprintf("corridor%d-driver%d", corridor, p)
			all = append(all, jitterRoute(rng, id, base, 0.00002))
		}
	}
	for s := 0; s < 40; s++ {
		all = append(all, jitterRoute(rng, fmt.Sprintf("solo-%d", s), randomRoute(rng), 0.0005))
	}
	if err := db.PutBatch(all); err != nil {
		log.Fatal(err)
	}

	// For a few drivers, find their 3 best carpool partners.
	for _, id := range []string{"corridor0-driver0", "corridor3-driver1", "solo-5"} {
		q := findRoute(all, id)
		top, err := db.TopKSearch(q, 4) // self + 3 partners
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — best partners:\n", id)
		for _, m := range top {
			if m.ID == id {
				continue
			}
			fmt.Printf("  %-22s  route distance %.6f\n", m.ID, m.Distance)
		}
	}
}

func randomRoute(rng *rand.Rand) []trass.Point {
	// A route across a ~0.003-wide city box on the normalized plane.
	cx, cy := 0.82+rng.Float64()*0.003, 0.72+rng.Float64()*0.003
	dx, dy := (rng.Float64()-0.5)*0.002, (rng.Float64()-0.5)*0.002
	n := 30 + rng.Intn(30)
	pts := make([]trass.Point, n)
	for i := range pts {
		f := float64(i) / float64(n-1)
		pts[i] = trass.Point{X: cx + f*dx, Y: cy + f*dy}
	}
	return pts
}

func jitterRoute(rng *rand.Rand, id string, base []trass.Point, j float64) *trass.Trajectory {
	pts := make([]trass.Point, len(base))
	for i, p := range base {
		pts[i] = trass.Point{X: p.X + (rng.Float64()-0.5)*j, Y: p.Y + (rng.Float64()-0.5)*j}
	}
	return trass.NewTrajectory(id, pts)
}

func findRoute(all []*trass.Trajectory, id string) *trass.Trajectory {
	for _, t := range all {
		if t.ID == id {
			return t
		}
	}
	log.Fatalf("route %s not found", id)
	return nil
}
