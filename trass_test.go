package trass

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
)

func openTestDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := openTestDB(t)
	data := gen.TDrive(gen.TDriveOptions{Seed: 1, N: 300})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 300 {
		t.Fatalf("count = %d", db.Count())
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	q := data[42]
	eps := gen.DegreesToNorm(0.01)

	matches, stats, err := db.ThresholdSearchStats(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	// The query itself is stored, so there is at least one match at 0.
	foundSelf := false
	for _, m := range matches {
		if m.ID == q.ID {
			foundSelf = true
			if m.Distance > 1e-7 {
				t.Fatalf("self distance %v", m.Distance)
			}
		}
	}
	if !foundSelf {
		t.Fatal("query trajectory not found by its own threshold search")
	}
	if stats.Results != len(matches) {
		t.Fatal("stats mismatch")
	}

	top, err := db.TopKSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("top-k returned %d", len(top))
	}
	if top[0].ID != q.ID || top[0].Distance > 1e-7 {
		t.Fatalf("nearest must be the query itself, got %+v", top[0])
	}
	if !sort.SliceIsSorted(top, func(i, j int) bool { return top[i].Distance < top[j].Distance }) {
		t.Fatal("top-k not ascending")
	}
}

func TestThresholdMatchesBruteOnPublicAPI(t *testing.T) {
	for _, m := range []Measure{Frechet, Hausdorff, DTW} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			db := openTestDB(t, WithMeasure(m), WithShards(4))
			data := gen.TDrive(gen.TDriveOptions{Seed: 2, N: 200})
			if err := db.PutBatch(data); err != nil {
				t.Fatal(err)
			}
			q := data[7]
			eps := gen.DegreesToNorm(0.02)
			if m == DTW {
				eps *= 20
			}
			got, err := db.ThresholdSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			fn := dist.For(m)
			want := 0
			for _, tr := range data {
				if fn(q.Points, tr.Points) <= eps {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("measure %v: got %d, want %d", m, len(got), want)
			}
		})
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir must fail")
	}
	if _, err := Open(t.TempDir(), WithMaxResolution(99)); err == nil {
		t.Fatal("bad resolution must fail")
	}
	db := openTestDB(t)
	q := NewTrajectory("q", []Point{{X: 0.5, Y: 0.5}})
	if _, err := db.ThresholdSearch(q, -1); err == nil {
		t.Fatal("negative threshold must fail")
	}
}

func TestLonLatHelpers(t *testing.T) {
	p := NormalizeLonLat(116.4, 39.9)
	lon, lat := DenormalizeLonLat(p)
	if math.Abs(lon-116.4) > 1e-9 || math.Abs(lat-39.9) > 1e-9 {
		t.Fatalf("round trip: %v %v", lon, lat)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := gen.TDrive(gen.TDriveOptions{Seed: 3, N: 50})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Rows persist in the KV substrate across restarts; a top-k for a stored
	// trajectory must find it at distance 0.
	top, err := db2.TopKSearch(data[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].ID != data[0].ID || top[0].Distance > 1e-7 {
		t.Fatalf("after reopen: %+v", top)
	}
}

func TestRangeSearchPublicAPI(t *testing.T) {
	db := openTestDB(t)
	data := gen.TDrive(gen.TDriveOptions{Seed: 9, N: 200})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	// A window around a stored trajectory's first point must find it.
	p := data[17].Points[0]
	window := Rect{
		Min: Point{X: p.X - 1e-6, Y: p.Y - 1e-6},
		Max: Point{X: p.X + 1e-6, Y: p.Y + 1e-6},
	}
	matches, err := db.RangeSearch(window)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == data[17].ID {
			found = true
		}
		// Every match genuinely has a point in the window.
		hit := false
		for _, pt := range m.Points {
			if window.ContainsPoint(pt) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("match %s has no point in the window", m.ID)
		}
	}
	if !found {
		t.Fatal("anchor trajectory not found by range search")
	}
}

func TestCompactAndOptions(t *testing.T) {
	db := openTestDB(t,
		WithDPTolerance(0.005/360),
		WithParallelism(2),
		WithShards(2),
		WithMaxResolution(14),
	)
	data := gen.TDrive(gen.TDriveOptions{Seed: 10, N: 100})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Queries still exact after compaction.
	top, err := db.TopKSearch(data[3], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].ID != data[3].ID {
		t.Fatalf("post-compaction top-1: %+v", top)
	}
}

// WithRefineParallelism must change only wall-clock, never results, and
// surface the pool size through QueryStats.
func TestRefineParallelismOption(t *testing.T) {
	data := gen.TDrive(gen.TDriveOptions{Seed: 11, N: 200})
	q := data[7]
	var baseline []Match
	for i, workers := range []int{1, 4} {
		db := openTestDB(t, WithShards(2), WithRefineParallelism(workers))
		if err := db.PutBatch(data); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		ms, stats, err := db.ThresholdSearchStats(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			t.Fatal("query must match at least itself")
		}
		if stats.Refined > 0 && stats.RefineWorkers < 1 {
			t.Fatalf("RefineWorkers = %d after refining %d candidates", stats.RefineWorkers, stats.Refined)
		}
		if workers == 1 && stats.RefineWorkers > 1 {
			t.Fatalf("RefineWorkers = %d with WithRefineParallelism(1)", stats.RefineWorkers)
		}
		if i == 0 {
			baseline = ms
		} else if !reflect.DeepEqual(baseline, ms) {
			t.Fatalf("results differ between 1 and %d refinement workers", workers)
		}
	}
}

func TestRandomizedPublicAPIAgainstBrute(t *testing.T) {
	db := openTestDB(t, WithShards(2))
	rng := rand.New(rand.NewSource(4))
	data := gen.Lorry(gen.LorryOptions{Seed: 4, N: 150})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	fn := dist.For(Frechet)
	for i := 0; i < 3; i++ {
		q := data[rng.Intn(len(data))]
		k := 1 + rng.Intn(20)
		got, err := db.TopKSearch(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]float64, len(data))
		for j, tr := range data {
			ds[j] = fn(q.Points, tr.Points)
		}
		sort.Float64s(ds)
		for j := range got {
			if math.Abs(got[j].Distance-ds[j]) > 1e-6 {
				t.Fatalf("rank %d: %v want %v", j, got[j].Distance, ds[j])
			}
		}
	}
}

func TestGetByID(t *testing.T) {
	db := openTestDB(t)
	data := gen.TDrive(gen.TDriveOptions{Seed: 11, N: 100})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get(data[42].ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != data[42].ID || got.Len() != data[42].Len() {
		t.Fatalf("Get returned %v", got)
	}
	if _, err := db.Get("no-such-id"); err != ErrNotFound {
		t.Fatalf("missing id: %v", err)
	}
	// Also works after flush + reopen (persisted index).
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(data[7].ID); err != nil {
		t.Fatalf("after flush: %v", err)
	}
}

func TestDurabilityAndContextOptions(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithSyncWrites(), WithDegradedScans())
	if err != nil {
		t.Fatal(err)
	}
	data := gen.TDrive(gen.TDriveOptions{Seed: 7, N: 60})
	if err := db.PutBatch(data); err != nil {
		t.Fatal(err)
	}
	q := data[10]
	eps := gen.DegreesToNorm(0.01)

	matches, stats, err := db.ThresholdSearchContext(context.Background(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches for the stored query itself")
	}
	if stats.PartialErrors != 0 {
		t.Fatalf("healthy store reported %d partial errors", stats.PartialErrors)
	}
	if _, _, err := db.TopKSearchContext(context.Background(), q, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.RangeSearchContext(context.Background(), q.MBR()); err != nil {
		t.Fatal(err)
	}

	// A cancelled context must surface its error, not partial results.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.ThresholdSearchContext(ctx, q, eps); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}

	// SyncWrites means everything acknowledged is on disk without a Flush:
	// reopen (same dir) and the data must be back.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 60 {
		t.Fatalf("reopened count = %d, want 60", db2.Count())
	}
	got, err := db2.Get(q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != q.ID {
		t.Fatalf("got id %q", got.ID)
	}
}
