// Command trass is the command-line front end of the TraSS reproduction:
// generate synthetic datasets, load them into a store, and run similarity
// queries against it.
//
//	trass gen -kind tdrive -n 10000 -out taxis.txt
//	trass load -db /data/taxis -in taxis.txt
//	trass query -db /data/taxis -id td000042 -eps 0.01deg
//	trass query -db /data/taxis -id td000042 -k 50
//	trass query -server http://127.0.0.1:7474 -id td000042 -eps 0.01deg
//	trass query -server http://127.0.0.1:7474 -stream -id td000042 -k 50
//	trass stats -db /data/taxis
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	trass "repro"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/traj"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "trass: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trass:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: trass <command> [flags]

commands:
  gen    generate a synthetic dataset (T-Drive-like or Lorry-like)
  load   load a dataset file into a store
  query  run a threshold or top-k similarity search (embedded, or against a
         running trassd with -server, optionally -stream)
  stats  print store statistics
  export convert a dataset file to GeoJSON for map inspection

run "trass <command> -h" for command flags
`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "tdrive", "dataset kind: tdrive | lorry")
	n := fs.Int("n", 10000, "number of trajectories")
	seed := fs.Int64("seed", 1, "random seed")
	scale := fs.Int("scale", 1, "replicate the dataset this many times")
	out := fs.String("out", "", "output file (default stdout)")
	_ = fs.Parse(args)

	var trajs []*traj.Trajectory
	switch *kind {
	case "tdrive":
		trajs = gen.TDrive(gen.TDriveOptions{Seed: *seed, N: *n})
	case "lorry":
		trajs = gen.Lorry(gen.LorryOptions{Seed: *seed, N: *n})
	default:
		return fmt.Errorf("unknown dataset kind %q", *kind)
	}
	trajs = gen.Scale(trajs, *scale)
	if *out == "" {
		return gen.Write(os.Stdout, trajs)
	}
	if err := gen.WriteFile(*out, trajs); err != nil {
		return err
	}
	fmt.Printf("wrote %d trajectories to %s\n", len(trajs), *out)
	return nil
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	dbDir := fs.String("db", "", "store directory (required)")
	in := fs.String("in", "", "input dataset file (text format)")
	tdriveDir := fs.String("tdrive-dir", "", "directory with a real T-Drive release (one txt per taxi)")
	shards := fs.Int("shards", 8, "row-key shards")
	res := fs.Int("resolution", 16, "XZ* maximum resolution")
	_ = fs.Parse(args)
	if *dbDir == "" || (*in == "") == (*tdriveDir == "") {
		return fmt.Errorf("load: -db plus exactly one of -in or -tdrive-dir is required")
	}
	var trajs []*traj.Trajectory
	var err error
	if *tdriveDir != "" {
		trajs, err = gen.LoadTDriveDir(*tdriveDir)
	} else {
		trajs, err = gen.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	db, err := trass.Open(*dbDir, trass.WithShards(*shards), trass.WithMaxResolution(*res))
	if err != nil {
		return err
	}
	defer db.Close()
	start := time.Now()
	if err := db.PutBatch(trajs); err != nil {
		return err
	}
	if err := db.Flush(); err != nil {
		return err
	}
	fmt.Printf("loaded %d trajectories in %v (%.0f/s)\n",
		len(trajs), time.Since(start).Round(time.Millisecond),
		float64(len(trajs))/time.Since(start).Seconds())
	return nil
}

// parseEps understands plain normalized values ("0.0001") and degree values
// with a "deg" suffix ("0.01deg"), matching the paper's units.
func parseEps(s string) (float64, error) {
	if deg, ok := strings.CutSuffix(s, "deg"); ok {
		v, err := strconv.ParseFloat(deg, 64)
		if err != nil {
			return 0, err
		}
		return gen.DegreesToNorm(v), nil
	}
	return strconv.ParseFloat(s, 64)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbDir := fs.String("db", "", "store directory (required unless -server)")
	srvURL := fs.String("server", "", "query a running trassd at this URL instead of opening a store")
	stream := fs.Bool("stream", false, "with -server: NDJSON streaming delivery (matches print as they arrive)")
	in := fs.String("in", "", "dataset file holding the query trajectory (default: look -id up in the store)")
	id := fs.String("id", "", "query trajectory id (required)")
	epsStr := fs.String("eps", "", "threshold (normalized, or degrees with deg suffix)")
	k := fs.Int("k", 0, "top-k (mutually exclusive with -eps)")
	measure := fs.String("measure", "frechet", "similarity measure: frechet | hausdorff | dtw")
	showStats := fs.Bool("stats", false, "print per-query statistics")
	_ = fs.Parse(args)
	if *srvURL != "" {
		return serverQuery(*srvURL, *stream, *in, *id, *epsStr, *k, *showStats)
	}
	if *stream {
		return fmt.Errorf("query: -stream requires -server")
	}
	if *dbDir == "" {
		return fmt.Errorf("query: -db is required")
	}
	if (*epsStr == "") == (*k == 0) {
		return fmt.Errorf("query: exactly one of -eps or -k is required")
	}

	var m trass.Measure
	switch *measure {
	case "frechet":
		m = trass.Frechet
	case "hausdorff":
		m = trass.Hausdorff
	case "dtw":
		m = trass.DTW
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}

	if *id == "" {
		return fmt.Errorf("query: -id is required")
	}
	db, err := trass.Open(*dbDir, trass.WithMeasure(m))
	if err != nil {
		return err
	}
	defer db.Close()

	var q *traj.Trajectory
	if *in != "" {
		trajs, err := gen.ReadFile(*in)
		if err != nil {
			return err
		}
		for _, t := range trajs {
			if t.ID == *id {
				q = t
				break
			}
		}
		if q == nil {
			return fmt.Errorf("trajectory %q not found in %s", *id, *in)
		}
	} else {
		// No dataset file: resolve the query trajectory from the store.
		q, err = db.Get(*id)
		if err != nil {
			return fmt.Errorf("trajectory %q not in store (pass -in to query with an external trajectory): %w", *id, err)
		}
	}

	var matches []trass.Match
	var stats *trass.QueryStats
	start := time.Now()
	if *epsStr != "" {
		eps, err := parseEps(*epsStr)
		if err != nil {
			return fmt.Errorf("bad -eps: %v", err)
		}
		matches, stats, err = db.ThresholdSearchStats(q, eps)
		if err != nil {
			return err
		}
	} else {
		matches, stats, err = db.TopKSearchStats(q, *k)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for _, match := range matches {
		fmt.Printf("%s\t%.9f\n", match.ID, match.Distance)
	}
	fmt.Fprintf(os.Stderr, "%d results in %v\n", len(matches), elapsed.Round(time.Microsecond))
	if *showStats {
		fmt.Fprintf(os.Stderr,
			"prune %v | scan %v | refine %v | ranges %d | rows scanned %d | retrieved %d | precision %.3f\n",
			stats.PruneTime.Round(time.Microsecond), stats.ScanTime.Round(time.Microsecond),
			stats.RefineTime.Round(time.Microsecond), stats.Ranges,
			stats.RowsScanned, stats.Retrieved, stats.Precision())
	}
	return nil
}

// serverQuery runs the query against a trassd server instead of an embedded
// store. Match lines print in the exact format the embedded path uses, so a
// non-streaming server query over the same store is byte-identical to
// `trass query -db` — the serve-e2e check in scripts/check.sh compares them
// with cmp. Streamed delivery arrives in refinement-completion order.
func serverQuery(srvURL string, stream bool, in, id, epsStr string, k int, showStats bool) error {
	if id == "" {
		return fmt.Errorf("query: -id is required")
	}
	if (epsStr == "") == (k == 0) {
		return fmt.Errorf("query: exactly one of -eps or -k is required")
	}
	req := server.QueryRequest{QueryID: id}
	if in != "" {
		// Ship the trajectory inline: the server need not have it stored.
		trajs, err := gen.ReadFile(in)
		if err != nil {
			return err
		}
		var q *traj.Trajectory
		for _, t := range trajs {
			if t.ID == id {
				q = t
				break
			}
		}
		if q == nil {
			return fmt.Errorf("trajectory %q not found in %s", id, in)
		}
		req.QueryID = ""
		req.Points = make([][2]float64, len(q.Points))
		for i, p := range q.Points {
			req.Points[i] = [2]float64{p.X, p.Y}
		}
	}
	if epsStr != "" {
		eps, err := parseEps(epsStr)
		if err != nil {
			return fmt.Errorf("bad -eps: %v", err)
		}
		req.Kind = server.KindThreshold
		req.Eps = eps
	} else {
		req.Kind = server.KindTopK
		req.K = k
	}

	client := server.NewClient(srvURL)
	ctx := context.Background()
	printMatch := func(m server.WireMatch) error {
		_, err := fmt.Printf("%s\t%.9f\n", m.ID, m.Distance)
		return err
	}
	var stats *server.WireStats
	var n int
	start := time.Now()
	if stream {
		st, err := client.QueryStream(ctx, req, func(m server.WireMatch) error {
			n++
			return printMatch(m)
		})
		if err != nil {
			return err
		}
		stats = st
	} else {
		matches, st, err := client.QueryAll(ctx, req)
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := printMatch(m); err != nil {
				return err
			}
		}
		n = len(matches)
		stats = st
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "%d results in %v\n", n, elapsed.Round(time.Microsecond))
	if showStats && stats != nil {
		fmt.Fprintf(os.Stderr,
			"prune %v | scan %v | refine %v | ranges %d | rows scanned %d | retrieved %d | retries %d | partial %d\n",
			time.Duration(stats.PruneNS).Round(time.Microsecond),
			time.Duration(stats.ScanNS).Round(time.Microsecond),
			time.Duration(stats.RefineNS).Round(time.Microsecond),
			stats.Ranges, stats.RowsScanned, stats.Retrieved, stats.Retries, stats.PartialErrors)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "", "input dataset file (required)")
	out := fs.String("out", "", "output GeoJSON file (default stdout)")
	limit := fs.Int("limit", 0, "export at most this many trajectories (0 = all)")
	_ = fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("export: -in is required")
	}
	trajs, err := gen.ReadFile(*in)
	if err != nil {
		return err
	}
	if *limit > 0 && len(trajs) > *limit {
		trajs = trajs[:*limit]
	}
	if *out == "" {
		return gen.WriteGeoJSON(os.Stdout, trajs)
	}
	if err := gen.WriteGeoJSONFile(*out, trajs); err != nil {
		return err
	}
	fmt.Printf("wrote %d trajectories to %s\n", len(trajs), *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbDir := fs.String("db", "", "store directory (required)")
	verify := fs.Bool("verify", false, "also check on-disk block checksums")
	_ = fs.Parse(args)
	if *dbDir == "" {
		return fmt.Errorf("stats: -db is required")
	}
	db, err := trass.Open(*dbDir)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("trajectories: %d\n", db.Count())
	if *verify {
		if err := db.Verify(); err != nil {
			return fmt.Errorf("integrity check failed: %w", err)
		}
		fmt.Println("integrity: ok")
	}
	return nil
}
