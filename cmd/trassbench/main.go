// Command trassbench regenerates the paper's evaluation figures.
//
//	trassbench -list
//	trassbench -exp fig9
//	trassbench -exp all -tdrive 20000 -lorry 20000 -queries 30
//	trassbench -exp refine -format=json -outdir artifacts
//	trassbench -check artifacts/BENCH_refine.json,artifacts/BENCH_lint.json
//
// Each experiment prints one or more tables matching a figure of the paper;
// EXPERIMENTS.md records the expected shapes. With -format=json each
// experiment additionally writes BENCH_<exp>.json — the same rows plus run
// metadata (config, git SHA, wall time) — which CI uploads as an artifact.
// The git SHA is read from TRASSBENCH_GIT_SHA, falling back to GITHUB_SHA.
//
// -check validates a comma-separated list of BENCH_*.json artifacts (exists,
// parses, carries data rows) and exits nonzero listing every problem — the
// gate CI's bench-smoke job runs so a silently-skipped experiment fails the
// build instead of uploading a hole.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/vfs"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or \"all\"")
	list := flag.Bool("list", false, "list experiments")
	tdriveN := flag.Int("tdrive", 0, "T-Drive-like dataset size (default 8000)")
	lorryN := flag.Int("lorry", 0, "Lorry-like dataset size (default 8000)")
	queries := flag.Int("queries", 0, "queries per data point (default 15)")
	seed := flag.Int64("seed", 1, "random seed")
	dir := flag.String("dir", "", "scratch directory (default: temp)")
	format := flag.String("format", "text", "output format: text, or json to also write BENCH_<exp>.json")
	outdir := flag.String("outdir", ".", "directory for BENCH_<exp>.json files (with -format=json)")
	check := flag.String("check", "", "comma-separated BENCH_*.json paths to validate; exits 1 listing every problem")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *check != "" {
		if problems := checkArtifacts(strings.Split(*check, ",")); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "trassbench: check: %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Println("all artifacts ok")
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, r := range bench.Runners {
			fmt.Printf("  %-8s %s\n", r.Name, r.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "trassbench: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	cfg := bench.Config{
		Dir:     *dir,
		TDriveN: *tdriveN,
		LorryN:  *lorryN,
		Queries: *queries,
		Seed:    *seed,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	run := func(name string) {
		var err error
		if *format == "json" {
			err = runJSON(name, cfg, *outdir)
		} else {
			err = bench.Run(name, cfg, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trassbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, r := range bench.Runners {
			run(r.Name)
		}
		return
	}
	run(*exp)
}

// runJSON executes one experiment, prints its text tables as usual, and
// persists BENCH_<name>.json under outdir.
func runJSON(name string, cfg bench.Config, outdir string) error {
	sha := os.Getenv("TRASSBENCH_GIT_SHA")
	if sha == "" {
		sha = os.Getenv("GITHUB_SHA")
	}
	rep, err := bench.RunReport(name, cfg, sha)
	if err != nil {
		return err
	}
	for _, t := range rep.Tables {
		tab := &bench.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
		if err := tab.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if err := vfs.Default.MkdirAll(outdir); err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_"+name+".json")
	f, err := vfs.Default.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// checkArtifacts validates every named BENCH_*.json and returns one message
// per problem (never failing fast — CI should see the full damage at once).
// An artifact passes when it exists, parses as a JSON object, names its
// experiment, and carries at least one data row — trassbench reports keep
// rows under "tables", trasslint's timing artifact under "analyzers".
func checkArtifacts(paths []string) []string {
	var problems []string
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if msg := checkArtifact(path); msg != "" {
			problems = append(problems, msg)
		}
	}
	return problems
}

func checkArtifact(path string) string {
	f, err := vfs.Default.Open(path)
	if err != nil {
		return fmt.Sprintf("%s: %v", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, 64<<20))
	if err != nil {
		return fmt.Sprintf("%s: %v", path, err)
	}
	var rep struct {
		Experiment string            `json:"experiment"`
		Tables     []json.RawMessage `json:"tables"`
		Analyzers  []json.RawMessage `json:"analyzers"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Sprintf("%s: unparseable: %v", path, err)
	}
	if rep.Experiment == "" {
		return fmt.Sprintf("%s: missing \"experiment\" field", path)
	}
	if len(rep.Tables) == 0 && len(rep.Analyzers) == 0 {
		return fmt.Sprintf("%s: no data rows (empty \"tables\" and \"analyzers\")", path)
	}
	return ""
}
