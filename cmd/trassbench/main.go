// Command trassbench regenerates the paper's evaluation figures.
//
//	trassbench -list
//	trassbench -exp fig9
//	trassbench -exp all -tdrive 20000 -lorry 20000 -queries 30
//
// Each experiment prints one or more tables matching a figure of the paper;
// EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or \"all\"")
	list := flag.Bool("list", false, "list experiments")
	tdriveN := flag.Int("tdrive", 0, "T-Drive-like dataset size (default 8000)")
	lorryN := flag.Int("lorry", 0, "Lorry-like dataset size (default 8000)")
	queries := flag.Int("queries", 0, "queries per data point (default 15)")
	seed := flag.Int64("seed", 1, "random seed")
	dir := flag.String("dir", "", "scratch directory (default: temp)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, r := range bench.Runners {
			fmt.Printf("  %-7s %s\n", r.Name, r.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{
		Dir:     *dir,
		TDriveN: *tdriveN,
		LorryN:  *lorryN,
		Queries: *queries,
		Seed:    *seed,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	run := func(name string) {
		if err := bench.Run(name, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trassbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, r := range bench.Runners {
			run(r.Name)
		}
		return
	}
	run(*exp)
}
