// Command trassbench regenerates the paper's evaluation figures.
//
//	trassbench -list
//	trassbench -exp fig9
//	trassbench -exp all -tdrive 20000 -lorry 20000 -queries 30
//	trassbench -exp refine -format=json -outdir artifacts
//
// Each experiment prints one or more tables matching a figure of the paper;
// EXPERIMENTS.md records the expected shapes. With -format=json each
// experiment additionally writes BENCH_<exp>.json — the same rows plus run
// metadata (config, git SHA, wall time) — which CI uploads as an artifact.
// The git SHA is read from TRASSBENCH_GIT_SHA, falling back to GITHUB_SHA.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/vfs"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or \"all\"")
	list := flag.Bool("list", false, "list experiments")
	tdriveN := flag.Int("tdrive", 0, "T-Drive-like dataset size (default 8000)")
	lorryN := flag.Int("lorry", 0, "Lorry-like dataset size (default 8000)")
	queries := flag.Int("queries", 0, "queries per data point (default 15)")
	seed := flag.Int64("seed", 1, "random seed")
	dir := flag.String("dir", "", "scratch directory (default: temp)")
	format := flag.String("format", "text", "output format: text, or json to also write BENCH_<exp>.json")
	outdir := flag.String("outdir", ".", "directory for BENCH_<exp>.json files (with -format=json)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, r := range bench.Runners {
			fmt.Printf("  %-8s %s\n", r.Name, r.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "trassbench: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	cfg := bench.Config{
		Dir:     *dir,
		TDriveN: *tdriveN,
		LorryN:  *lorryN,
		Queries: *queries,
		Seed:    *seed,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	run := func(name string) {
		var err error
		if *format == "json" {
			err = runJSON(name, cfg, *outdir)
		} else {
			err = bench.Run(name, cfg, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trassbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, r := range bench.Runners {
			run(r.Name)
		}
		return
	}
	run(*exp)
}

// runJSON executes one experiment, prints its text tables as usual, and
// persists BENCH_<name>.json under outdir.
func runJSON(name string, cfg bench.Config, outdir string) error {
	sha := os.Getenv("TRASSBENCH_GIT_SHA")
	if sha == "" {
		sha = os.Getenv("GITHUB_SHA")
	}
	rep, err := bench.RunReport(name, cfg, sha)
	if err != nil {
		return err
	}
	for _, t := range rep.Tables {
		tab := &bench.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
		if err := tab.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if err := vfs.Default.MkdirAll(outdir); err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_"+name+".json")
	f, err := vfs.Default.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
