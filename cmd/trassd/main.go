// Command trassd serves a TraSS store over the network: the full query
// surface (threshold / top-k / range / point-kNN plus time-window variants)
// over HTTP/JSON, with chunked NDJSON streaming of results, per-request
// deadlines, bounded in-flight admission with 429 shedding, /healthz +
// /statsz, and graceful drain on SIGINT/SIGTERM.
//
//	trassd -db /data/taxis -addr :7474
//	trassd -db /data/taxis -addr 127.0.0.1:0 -addr-file /tmp/trassd.addr
//
// With -addr-file the bound address (useful with port 0) is written to the
// named file once the listener is up — the handshake scripts/check.sh's
// serve e2e uses to find the ephemeral port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	trass "repro"
	"repro/internal/server"
	"repro/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trassd:", err)
		os.Exit(1)
	}
}

func run() error {
	dbDir := flag.String("db", "", "store directory (required)")
	addr := flag.String("addr", ":7474", "listen address (host:port; port 0 picks one)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	measure := flag.String("measure", "frechet", "similarity measure: frechet | hausdorff | dtw")
	maxInFlight := flag.Int("max-inflight", 64, "concurrent query bound; excess requests get 429")
	defaultDeadline := flag.Duration("deadline", 30*time.Second, "per-request deadline when the client sets none")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "clamp on client-requested deadlines")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long SIGTERM drain waits for in-flight streams before cancelling them")
	degraded := flag.Bool("degraded-scans", false, "serve partial results when storage regions fail after retries")
	flag.Parse()
	if *dbDir == "" {
		return fmt.Errorf("-db is required")
	}

	var m trass.Measure
	switch *measure {
	case "frechet":
		m = trass.Frechet
	case "hausdorff":
		m = trass.Hausdorff
	case "dtw":
		m = trass.DTW
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}

	opts := []trass.Option{trass.WithMeasure(m)}
	if *degraded {
		opts = append(opts, trass.WithDegradedScans())
	}
	db, err := trass.Open(*dbDir, opts...)
	if err != nil {
		return err
	}
	// The server owns db from here: Shutdown closes it exactly once, on
	// every path below.

	srv := server.New(db, server.Config{
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		Logf:            log.Printf,
	})
	// Shutdown is idempotent and closes the store exactly once, so deferring
	// it releases the server on every path — including the clean drain, where
	// the signal handler has already run it.
	defer func() { _ = srv.Shutdown(context.Background()) }()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	if *addrFile != "" {
		if werr := writeAddrFile(*addrFile, lis.Addr().String()); werr != nil {
			_ = lis.Close()
			return werr
		}
	}

	// SIGINT/SIGTERM begins the drain: sigCtx cancels, AfterFunc launches
	// Shutdown with the drain grace, Serve returns ErrServerClosed once the
	// last in-flight stream has finished (or been cancelled at the grace
	// deadline) and the store is closed.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drainErr := make(chan error, 1)
	cancelDrain := context.AfterFunc(sigCtx, func() {
		graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		drainErr <- srv.Shutdown(graceCtx)
	})
	defer cancelDrain()

	err = srv.Serve(lis)
	if errors.Is(err, http.ErrServerClosed) {
		// Clean drain path: surface the shutdown's verdict instead.
		return <-drainErr
	}
	// Serve failed on its own (listener error); the deferred Shutdown still
	// closes the store.
	return err
}

// writeAddrFile publishes the bound address through the vfs seam (atomic
// enough for a single line: create, write, close).
func writeAddrFile(path, addr string) error {
	f, err := vfs.Default.Create(path)
	if err != nil {
		return fmt.Errorf("addr-file: %w", err)
	}
	if _, err := f.Write([]byte(addr + "\n")); err != nil {
		_ = f.Close()
		return fmt.Errorf("addr-file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("addr-file: %w", err)
	}
	return nil
}
