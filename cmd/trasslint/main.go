// Command trasslint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers for the invariants TraSS depends on
// — lock discipline, float comparison hygiene, discarded errors, iterator
// key aliasing, and goroutine lifecycle.
//
// Usage:
//
//	trasslint [-tests] [-v] [packages]
//
// where packages is ./... (the default) or one or more package directories.
// Exit status: 0 clean, 1 diagnostics found, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	verbose := flag.Bool("v", false, "log each analyzed package")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trasslint [-tests] [-v] [./... | dirs]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		case strings.HasSuffix(arg, "/..."):
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			prefix := filepath.Clean(strings.TrimSuffix(arg, "/...")) + string(filepath.Separator)
			for _, p := range all {
				rel, err := filepath.Rel(cwd, p.Dir)
				if err == nil && (strings.HasPrefix(rel+string(filepath.Separator), prefix) || rel == filepath.Clean(strings.TrimSuffix(arg, "/..."))) {
					pkgs = append(pkgs, p)
				}
			}
		default:
			p, err := loader.LoadDir(arg)
			if err != nil {
				fatal(err)
			}
			if p != nil {
				pkgs = append(pkgs, p)
			}
		}
	}

	exit := 0
	analyzers := lint.All()
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "trasslint: %s\n", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "trasslint: warning: %s: %v\n", pkg.Path, terr)
		}
		for _, d := range lint.Run(pkg, analyzers) {
			fmt.Println(rel(cwd, d))
			exit = 1
		}
	}
	os.Exit(exit)
}

// rel shortens the diagnostic's file path relative to the working directory.
func rel(cwd string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "trasslint: %v\n", err)
	os.Exit(2)
}
