// Command trasslint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers for the invariants TraSS depends on
// — lock discipline, float comparison hygiene, discarded errors, iterator
// key aliasing, goroutine lifecycle, the vfs filesystem seam, the
// write→Sync→Rename→SyncDir durability order, context observation in retry
// loops, and loop/buffer retention.
//
// Usage:
//
//	trasslint [-tests] [-v] [-format=text|json|github] [-only=a,b] [-skip=c] [packages]
//
// where packages is ./... (the default) or one or more package directories.
//
// Analyzer selection:
//
//	-list       print every analyzer with its one-line doc and exit
//	-only=a,b   run only the named analyzers
//	-skip=c,d   run everything except the named analyzers
//
// -only is applied before -skip, so "-only=locks,guardedby -skip=locks" runs
// just guardedby. Unknown names are an error (exit 2), not a silent no-op.
//
// Timing:
//
//	-timingjson=PATH   write per-analyzer wall time as a JSON artifact
//
// The artifact mirrors the BENCH_<exp>.json shape cmd/trassbench emits
// (experiment, git SHA from TRASSLINT_GIT_SHA or GITHUB_SHA, started_at,
// wall_ms) with one {name, ms, findings} row per analyzer, so CI archives
// lint cost trajectories next to the benchmark ones.
//
// Output formats:
//
//	text    one "file:line:col: [analyzer] message" line per finding (default)
//	json    a JSON array of {file,line,col,analyzer,message} objects
//	github  GitHub Actions ::error annotations, one per finding
//
// The default format can also be set with the TRASSLINT_FORMAT environment
// variable; the -format flag wins when both are given.
//
// Exit status (the contract CI relies on):
//
//	0  every analyzed package is clean
//	1  at least one diagnostic was reported
//	2  the module or a requested package failed to load, an analyzer
//	   panicked, or the -maxwall budget was exceeded
//
// An analyzer panic is recovered per analyzer — the rest of the suite still
// runs and its findings are still printed — but the run exits 2, the panic
// is reported like a finding (in -format=json with the goroutine stack in a
// "stack" field), and the stack goes to stderr in text mode. A crash must
// fail the gate loudly rather than silently dropping one analyzer's
// coverage.
//
// Wall-time budget:
//
//	-maxwall=DURATION   exit 2 if the whole run exceeds this wall time
//
// CI's bench-smoke uses this as a regression tripwire for lint cost.
//
// A summary timing line (packages, findings, elapsed) is always written to
// stderr so CI logs show where lint time goes; it never pollutes stdout,
// which carries only findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/vfs"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	verbose := flag.Bool("v", false, "log each analyzed package")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", defaultFormat(), "output format: text, json, or github")
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to exclude")
	timingJSON := flag.String("timingjson", "", "write per-analyzer timing JSON to this path")
	maxWall := flag.Duration("maxwall", 0, "fail (exit 2) if the run exceeds this wall time; 0 disables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trasslint [-tests] [-v] [-format=text|json|github] [-only=a,b] [-skip=c] [-timingjson=path] [-maxwall=30s] [./... | dirs]\n")
		fmt.Fprintf(os.Stderr, "exit status: 0 clean, 1 findings, 2 load error\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "trasslint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(lint.All(), *only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trasslint: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		case strings.HasSuffix(arg, "/..."):
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			prefix := filepath.Clean(strings.TrimSuffix(arg, "/...")) + string(filepath.Separator)
			for _, p := range all {
				rel, err := filepath.Rel(cwd, p.Dir)
				if err == nil && (strings.HasPrefix(rel+string(filepath.Separator), prefix) || rel == filepath.Clean(strings.TrimSuffix(arg, "/..."))) {
					pkgs = append(pkgs, p)
				}
			}
		default:
			p, err := loader.LoadDir(arg)
			if err != nil {
				fatal(err)
			}
			if p != nil {
				pkgs = append(pkgs, p)
			}
		}
	}

	var timings map[string]time.Duration
	if *timingJSON != "" {
		timings = map[string]time.Duration{}
	}
	var diags []lint.Diagnostic
	var panics []lint.AnalyzerPanic
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "trasslint: %s\n", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "trasslint: warning: %s: %v\n", pkg.Path, terr)
		}
		pkgDiags, pkgPanics := lint.RunTimed(pkg, analyzers, timings)
		for _, d := range pkgDiags {
			if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				d.Pos.Filename = r
			}
			diags = append(diags, d)
		}
		panics = append(panics, pkgPanics...)
	}

	emit(*format, diags, panics)
	if *timingJSON != "" {
		if err := writeTimings(*timingJSON, analyzers, timings, diags, len(pkgs), start); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "trasslint: %d packages, %d findings, %d panics, %s elapsed\n",
		len(pkgs), len(diags), len(panics), elapsed.Round(time.Millisecond))
	switch {
	case len(panics) > 0:
		os.Exit(2)
	case *maxWall > 0 && elapsed > *maxWall:
		fmt.Fprintf(os.Stderr, "trasslint: wall time %s exceeded -maxwall=%s budget\n",
			elapsed.Round(time.Millisecond), *maxWall)
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}

// selectAnalyzers applies -only then -skip to the full roster. Unknown names
// are errors so a typo cannot silently disable a gate.
func selectAnalyzers(all []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(flagName, list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (run trasslint -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analyzer selection is empty: -only=%q -skip=%q cancel out", only, skip)
	}
	return out, nil
}

// timingReport is the -timingjson payload: the same envelope as trassbench's
// BENCH_<exp>.json (experiment, git SHA, started_at, wall_ms) with one row
// per analyzer, so CI tooling that diffs benchmark artifacts across commits
// can diff lint cost the same way.
type timingReport struct {
	Experiment string      `json:"experiment"`
	GitSHA     string      `json:"git_sha,omitempty"`
	StartedAt  string      `json:"started_at"`
	WallMS     int64       `json:"wall_ms"`
	Packages   int         `json:"packages"`
	Findings   int         `json:"findings"`
	Analyzers  []timingRow `json:"analyzers"`
}

type timingRow struct {
	Name     string  `json:"name"`
	MS       float64 `json:"ms"`
	Findings int     `json:"findings"`
}

// writeTimings persists the per-analyzer timing artifact through the vfs
// seam. Rows keep roster order — stable across runs, so artifact diffs show
// cost movement, not reordering.
func writeTimings(path string, analyzers []*lint.Analyzer, timings map[string]time.Duration, diags []lint.Diagnostic, packages int, start time.Time) error {
	perAnalyzer := map[string]int{}
	for _, d := range diags {
		perAnalyzer[d.Analyzer]++
	}
	rep := timingReport{
		Experiment: "lint",
		GitSHA:     gitSHA(),
		StartedAt:  start.UTC().Format(time.RFC3339),
		WallMS:     time.Since(start).Milliseconds(),
		Packages:   packages,
		Findings:   len(diags),
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, timingRow{
			Name:     a.Name,
			MS:       float64(timings[a.Name].Microseconds()) / 1000,
			Findings: perAnalyzer[a.Name],
		})
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := vfs.Default.MkdirAll(dir); err != nil {
			return err
		}
	}
	f, err := vfs.Default.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trasslint: wrote %s\n", path)
	return nil
}

func gitSHA() string {
	if sha := os.Getenv("TRASSLINT_GIT_SHA"); sha != "" {
		return sha
	}
	return os.Getenv("GITHUB_SHA")
}

// defaultFormat resolves the format default from TRASSLINT_FORMAT so CI can
// flip the whole gate to annotations without touching flag plumbing.
func defaultFormat() string {
	if f := os.Getenv("TRASSLINT_FORMAT"); f != "" {
		return f
	}
	return "text"
}

// jsonDiag is the machine-readable finding shape: flat, stable field names.
// Stack is only set on analyzer-panic rows.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Stack    string `json:"stack,omitempty"`
}

func emit(format string, diags []lint.Diagnostic, panics []lint.AnalyzerPanic) {
	switch format {
	case "text":
		for _, d := range diags {
			fmt.Println(d.String())
		}
		for _, p := range panics {
			fmt.Printf("%s: [%s] PANIC: %v\n", p.Package, p.Analyzer, p.Value)
			fmt.Fprintf(os.Stderr, "trasslint: %v\n%s\n", p.Error(), p.Stack)
		}
	case "json":
		out := make([]jsonDiag, 0, len(diags)+len(panics))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, p := range panics {
			out = append(out, jsonDiag{
				File:     p.Package,
				Analyzer: p.Analyzer,
				Message:  p.Error(),
				Stack:    p.Stack,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case "github":
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=trasslint(%s)::%s\n",
				escapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				escapeProperty(d.Analyzer), escapeData(d.Message))
		}
		for _, p := range panics {
			fmt.Printf("::error title=trasslint(%s) panic::%s\n",
				escapeProperty(p.Analyzer), escapeData(p.Error()))
		}
	}
}

// escapeData encodes an annotation message per the workflow-command rules.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty encodes an annotation property value (additionally , and :).
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "trasslint: %v\n", err)
	os.Exit(2)
}
