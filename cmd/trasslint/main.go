// Command trasslint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers for the invariants TraSS depends on
// — lock discipline, float comparison hygiene, discarded errors, iterator
// key aliasing, goroutine lifecycle, the vfs filesystem seam, the
// write→Sync→Rename→SyncDir durability order, context observation in retry
// loops, and loop/buffer retention.
//
// Usage:
//
//	trasslint [-tests] [-v] [-format=text|json|github] [packages]
//
// where packages is ./... (the default) or one or more package directories.
//
// Output formats:
//
//	text    one "file:line:col: [analyzer] message" line per finding (default)
//	json    a JSON array of {file,line,col,analyzer,message} objects
//	github  GitHub Actions ::error annotations, one per finding
//
// The default format can also be set with the TRASSLINT_FORMAT environment
// variable; the -format flag wins when both are given.
//
// Exit status (the contract CI relies on):
//
//	0  every analyzed package is clean
//	1  at least one diagnostic was reported
//	2  the module or a requested package failed to load
//
// A summary timing line (packages, findings, elapsed) is always written to
// stderr so CI logs show where lint time goes; it never pollutes stdout,
// which carries only findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	verbose := flag.Bool("v", false, "log each analyzed package")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", defaultFormat(), "output format: text, json, or github")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trasslint [-tests] [-v] [-format=text|json|github] [./... | dirs]\n")
		fmt.Fprintf(os.Stderr, "exit status: 0 clean, 1 findings, 2 load error\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "trasslint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}

	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		case strings.HasSuffix(arg, "/..."):
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			prefix := filepath.Clean(strings.TrimSuffix(arg, "/...")) + string(filepath.Separator)
			for _, p := range all {
				rel, err := filepath.Rel(cwd, p.Dir)
				if err == nil && (strings.HasPrefix(rel+string(filepath.Separator), prefix) || rel == filepath.Clean(strings.TrimSuffix(arg, "/..."))) {
					pkgs = append(pkgs, p)
				}
			}
		default:
			p, err := loader.LoadDir(arg)
			if err != nil {
				fatal(err)
			}
			if p != nil {
				pkgs = append(pkgs, p)
			}
		}
	}

	analyzers := lint.All()
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "trasslint: %s\n", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "trasslint: warning: %s: %v\n", pkg.Path, terr)
		}
		for _, d := range lint.Run(pkg, analyzers) {
			if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				d.Pos.Filename = r
			}
			diags = append(diags, d)
		}
	}

	emit(*format, diags)
	fmt.Fprintf(os.Stderr, "trasslint: %d packages, %d findings, %s elapsed\n",
		len(pkgs), len(diags), time.Since(start).Round(time.Millisecond))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// defaultFormat resolves the format default from TRASSLINT_FORMAT so CI can
// flip the whole gate to annotations without touching flag plumbing.
func defaultFormat() string {
	if f := os.Getenv("TRASSLINT_FORMAT"); f != "" {
		return f
	}
	return "text"
}

// jsonDiag is the machine-readable finding shape: flat, stable field names.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emit(format string, diags []lint.Diagnostic) {
	switch format {
	case "text":
		for _, d := range diags {
			fmt.Println(d.String())
		}
	case "json":
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case "github":
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=trasslint(%s)::%s\n",
				escapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				escapeProperty(d.Analyzer), escapeData(d.Message))
		}
	}
}

// escapeData encodes an annotation message per the workflow-command rules.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty encodes an annotation property value (additionally , and :).
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "trasslint: %v\n", err)
	os.Exit(2)
}
